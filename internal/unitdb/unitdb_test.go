package unitdb

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hafw/internal/ids"
)

func TestCreateSessionAssignsSequentialIDs(t *testing.T) {
	db := New("movie-1")
	s1 := db.CreateSession(10)
	s2 := db.CreateSession(11)
	if s1.ID != 1 || s2.ID != 2 {
		t.Errorf("IDs = %v, %v; want 1, 2", s1.ID, s2.ID)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d, want 2", db.Len())
	}
	if db.Get(s1.ID).Client != 10 {
		t.Errorf("Client = %v, want 10", db.Get(s1.ID).Client)
	}
}

func TestRemove(t *testing.T) {
	db := New("u")
	s := db.CreateSession(1)
	db.Remove(s.ID)
	if db.Get(s.ID) != nil || db.Len() != 0 {
		t.Error("session should be gone")
	}
	db.Remove(99) // removing unknown session is a no-op
}

func TestUpdateContextStampOrdering(t *testing.T) {
	db := New("u")
	s := db.CreateSession(1)
	if !db.UpdateContext(s.ID, []byte("v2"), 2) {
		t.Fatal("fresh update should apply")
	}
	if db.UpdateContext(s.ID, []byte("v1"), 1) {
		t.Error("stale update must be rejected")
	}
	if db.UpdateContext(s.ID, []byte("v2dup"), 2) {
		t.Error("equal-stamp update must be rejected")
	}
	if string(s.Context) != "v2" || s.Stamp != 2 {
		t.Errorf("context = %q stamp %d, want v2/2", s.Context, s.Stamp)
	}
	if db.UpdateContext(999, []byte("x"), 9) {
		t.Error("update of unknown session must report false")
	}
}

func TestAllocateFresh(t *testing.T) {
	db := New("u")
	s := db.CreateSession(1)
	members := []ids.ProcessID{1, 2, 3}
	p, b := db.Allocate(s.ID, members, 1)
	if p == ids.Nil {
		t.Fatal("no primary allocated")
	}
	if len(b) != 1 {
		t.Fatalf("backups = %v, want 1", b)
	}
	if p == b[0] {
		t.Error("primary must not be its own backup")
	}
}

func TestAllocateKeepsPrimary(t *testing.T) {
	db := New("u")
	s := db.CreateSession(1)
	db.SetAllocation(s.ID, 2, []ids.ProcessID{3})
	p, _ := db.Allocate(s.ID, []ids.ProcessID{1, 2, 3}, 1)
	if p != 2 {
		t.Errorf("primary = %v, want retained 2", p)
	}
}

func TestAllocatePromotesBackup(t *testing.T) {
	db := New("u")
	s := db.CreateSession(1)
	db.SetAllocation(s.ID, 2, []ids.ProcessID{3, 4})
	// Primary 2 died; first surviving backup (3) must be promoted.
	p, _ := db.Allocate(s.ID, []ids.ProcessID{1, 3, 4}, 1)
	if p != 3 {
		t.Errorf("primary = %v, want promoted backup 3", p)
	}
}

func TestAllocatePromotesSecondBackupWhenFirstDead(t *testing.T) {
	db := New("u")
	s := db.CreateSession(1)
	db.SetAllocation(s.ID, 2, []ids.ProcessID{3, 4})
	p, _ := db.Allocate(s.ID, []ids.ProcessID{1, 4}, 1)
	if p != 4 {
		t.Errorf("primary = %v, want promoted backup 4", p)
	}
}

func TestAllocateWholeGroupDead(t *testing.T) {
	db := New("u")
	s := db.CreateSession(1)
	db.SetAllocation(s.ID, 2, []ids.ProcessID{3})
	p, _ := db.Allocate(s.ID, []ids.ProcessID{7, 8}, 1)
	if p != 7 && p != 8 {
		t.Errorf("primary = %v, want a fresh member", p)
	}
}

func TestAllocateBalancesLoad(t *testing.T) {
	db := New("u")
	members := []ids.ProcessID{1, 2, 3}
	counts := make(map[ids.ProcessID]int)
	for i := 0; i < 30; i++ {
		s := db.CreateSession(ids.ClientID(i))
		p, _ := db.Allocate(s.ID, members, 1)
		counts[p]++
	}
	for _, m := range members {
		if counts[m] < 5 {
			t.Errorf("member %v got only %d/30 sessions; load balancing broken: %v", m, counts[m], counts)
		}
	}
}

func TestAllocateFewerMembersThanBackups(t *testing.T) {
	db := New("u")
	s := db.CreateSession(1)
	p, b := db.Allocate(s.ID, []ids.ProcessID{5}, 3)
	if p != 5 || len(b) != 0 {
		t.Errorf("allocation = %v/%v, want 5 with no backups", p, b)
	}
}

func TestAllocateUnknownSession(t *testing.T) {
	db := New("u")
	p, b := db.Allocate(42, []ids.ProcessID{1}, 1)
	if p != ids.Nil || b != nil {
		t.Error("unknown session must not allocate")
	}
}

func TestReallocateMigratesOnlyOrphans(t *testing.T) {
	db := New("u")
	s1 := db.CreateSession(1)
	s2 := db.CreateSession(2)
	db.SetAllocation(s1.ID, 1, []ids.ProcessID{2})
	db.SetAllocation(s2.ID, 3, []ids.ProcessID{1})

	changes := db.Reallocate([]ids.ProcessID{1, 2}, 1) // p3 crashed
	if len(changes) != 2 {
		t.Fatalf("changes = %d, want 2", len(changes))
	}
	byID := map[ids.SessionID]Change{}
	for _, c := range changes {
		byID[c.SessionID] = c
	}
	if byID[s1.ID].PrimaryChanged() {
		t.Error("s1's primary survived and must not migrate")
	}
	c2 := byID[s2.ID]
	if !c2.PrimaryChanged() || c2.NewPrimary != 1 {
		t.Errorf("s2 should migrate to surviving backup 1, got %+v", c2)
	}
}

func TestSessionGroupAndInGroup(t *testing.T) {
	s := &Session{ID: 1, Primary: 2, Backups: []ids.ProcessID{3, 4}}
	if got := s.SessionGroup(); !reflect.DeepEqual(got, []ids.ProcessID{2, 3, 4}) {
		t.Errorf("SessionGroup = %v", got)
	}
	for _, p := range []ids.ProcessID{2, 3, 4} {
		if !s.InGroup(p) {
			t.Errorf("InGroup(%v) = false", p)
		}
	}
	if s.InGroup(5) {
		t.Error("InGroup(5) = true")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	db := New("movie-9")
	s := db.CreateSession(7)
	db.SetAllocation(s.ID, 1, []ids.ProcessID{2})
	db.UpdateContext(s.ID, []byte("ctx"), 5)

	snap := db.Snapshot()
	db2 := New("other")
	db2.Restore(snap)
	if db2.Checksum() != db.Checksum() {
		t.Error("restored database differs from original")
	}
	// Snapshot must be a deep copy: mutating it does not affect db.
	snap.Sessions[0].Context[0] = 'X'
	if string(db.Get(s.ID).Context) != "ctx" {
		t.Error("snapshot aliases live database memory")
	}
}

func TestMergeAdoptsAndResolves(t *testing.T) {
	a := New("u")
	sa := a.CreateSession(1)
	a.UpdateContext(sa.ID, []byte("old"), 1)

	b := New("u")
	sb := b.CreateSession(1) // same ID 1 on the other side (split brain)
	b.UpdateContext(sb.ID, []byte("new"), 3)
	b.CreateSession(2) // session unknown to a

	a.Merge(b.Snapshot())
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after merge", a.Len())
	}
	if string(a.Get(1).Context) != "new" {
		t.Error("merge must keep the fresher context")
	}
	// Counter advanced so future IDs don't collide.
	s3 := a.CreateSession(9)
	if s3.ID != 3 {
		t.Errorf("next ID = %v, want 3", s3.ID)
	}
}

func TestMergeKeepsLocalFresher(t *testing.T) {
	a := New("u")
	sa := a.CreateSession(1)
	a.UpdateContext(sa.ID, []byte("fresh"), 9)
	b := New("u")
	sb := b.CreateSession(1)
	b.UpdateContext(sb.ID, []byte("stale"), 2)
	a.Merge(b.Snapshot())
	if string(a.Get(1).Context) != "fresh" {
		t.Error("merge must not regress to a staler context")
	}
}

// TestReplicaDeterminism is the core property: two replicas applying the
// same randomized operation sequence end with identical checksums.
func TestReplicaDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		ops := randomOps(seed, 200)
		a, b := New("u"), New("u")
		for _, op := range ops {
			op(a)
			op(b)
		}
		return a.Checksum() == b.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestChecksumSensitivity: checksums differ when state differs.
func TestChecksumSensitivity(t *testing.T) {
	a, b := New("u"), New("u")
	a.CreateSession(1)
	b.CreateSession(2)
	if a.Checksum() == b.Checksum() {
		t.Error("different clients must yield different checksums")
	}
}

// randomOps builds a deterministic random operation sequence.
func randomOps(seed int64, n int) []func(*DB) {
	rng := rand.New(rand.NewSource(seed))
	members := []ids.ProcessID{1, 2, 3, 4, 5}
	var ops []func(*DB)
	var live []ids.SessionID
	nextSID := uint64(0)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			c := ids.ClientID(rng.Intn(100))
			nextSID++
			sid := ids.SessionID(nextSID)
			live = append(live, sid)
			ops = append(ops, func(db *DB) { db.CreateSession(c) })
		case 1:
			if len(live) == 0 {
				continue
			}
			sid := live[rng.Intn(len(live))]
			stamp := uint64(rng.Intn(50))
			ctx := []byte{byte(rng.Intn(256))}
			ops = append(ops, func(db *DB) { db.UpdateContext(sid, ctx, stamp) })
		case 2:
			if len(live) == 0 {
				continue
			}
			sid := live[rng.Intn(len(live))]
			sub := members[:1+rng.Intn(len(members))]
			bk := rng.Intn(3)
			ops = append(ops, func(db *DB) { db.Allocate(sid, sub, bk) })
		case 3:
			sub := members[:1+rng.Intn(len(members))]
			bk := rng.Intn(3)
			ops = append(ops, func(db *DB) { db.Reallocate(sub, bk) })
		case 4:
			if len(live) == 0 || rng.Intn(4) != 0 {
				continue
			}
			k := rng.Intn(len(live))
			sid := live[k]
			live = append(live[:k], live[k+1:]...)
			ops = append(ops, func(db *DB) { db.Remove(sid) })
		}
	}
	return ops
}

// TestAllocationDeterminismAcrossReplicas: replicas with identical state
// allocate identically (no hidden map-iteration nondeterminism).
func TestAllocationDeterminismAcrossReplicas(t *testing.T) {
	build := func() *DB {
		db := New("u")
		for i := 0; i < 40; i++ {
			s := db.CreateSession(ids.ClientID(i))
			db.Allocate(s.ID, []ids.ProcessID{1, 2, 3, 4}, 2)
		}
		return db
	}
	a, b := build(), build()
	ca := a.Reallocate([]ids.ProcessID{2, 3, 4}, 2)
	cb := b.Reallocate([]ids.ProcessID{2, 3, 4}, 2)
	if !reflect.DeepEqual(ca, cb) {
		t.Fatal("reallocation differs between identical replicas")
	}
	if a.Checksum() != b.Checksum() {
		t.Fatal("checksums differ after identical reallocation")
	}
}

func TestReallocateBalancedEvensLoad(t *testing.T) {
	db := New("u")
	// 6 sessions all piled on server 1.
	for i := 0; i < 6; i++ {
		s := db.CreateSession(ids.ClientID(i))
		db.SetAllocation(s.ID, 1, nil)
	}
	changes := db.ReallocateBalanced([]ids.ProcessID{1, 2, 3}, 0)
	if len(changes) != 6 {
		t.Fatalf("changes = %d", len(changes))
	}
	counts := map[ids.ProcessID]int{}
	for _, s := range db.Sessions() {
		counts[s.Primary]++
	}
	for _, m := range []ids.ProcessID{1, 2, 3} {
		if counts[m] != 2 {
			t.Fatalf("load not evened: %v", counts)
		}
	}
}

func TestReallocateBalancedKeepsPrimariesUnderTarget(t *testing.T) {
	db := New("u")
	s1 := db.CreateSession(1)
	db.SetAllocation(s1.ID, 2, nil)
	changes := db.ReallocateBalanced([]ids.ProcessID{1, 2, 3}, 1)
	if changes[0].PrimaryChanged() {
		t.Fatalf("under-target primary migrated: %+v", changes[0])
	}
	if len(changes[0].NewBackups) != 1 {
		t.Fatalf("backup not filled: %+v", changes[0])
	}
}

func TestReallocateBalancedPromotesBackupOverStranger(t *testing.T) {
	db := New("u")
	// Server 1 overloaded; session's backup should win the migration.
	for i := 0; i < 3; i++ {
		s := db.CreateSession(ids.ClientID(i))
		db.SetAllocation(s.ID, 1, []ids.ProcessID{2})
	}
	changes := db.ReallocateBalanced([]ids.ProcessID{1, 2, 3}, 1)
	migratedToBackup := false
	for _, c := range changes {
		if c.PrimaryChanged() && c.NewPrimary == 2 {
			migratedToBackup = true
		}
	}
	if !migratedToBackup {
		t.Fatalf("no session migrated to its backup: %+v", changes)
	}
}

func TestReallocateBalancedDeadPrimary(t *testing.T) {
	db := New("u")
	s := db.CreateSession(1)
	db.SetAllocation(s.ID, 9, []ids.ProcessID{2})
	db.ReallocateBalanced([]ids.ProcessID{1, 2, 3}, 1)
	if got := db.Get(s.ID).Primary; got != 2 {
		t.Fatalf("dead primary should fall to surviving backup, got %v", got)
	}
}

func TestReallocateBalancedEmptyMembers(t *testing.T) {
	db := New("u")
	db.CreateSession(1)
	if got := db.ReallocateBalanced(nil, 1); len(got) != 1 {
		t.Fatalf("changes = %v", got)
	}
}

func TestReallocateBalancedDeterministic(t *testing.T) {
	build := func() *DB {
		db := New("u")
		for i := 0; i < 30; i++ {
			s := db.CreateSession(ids.ClientID(i % 7))
			db.Allocate(s.ID, []ids.ProcessID{1, 2}, 1)
		}
		return db
	}
	a, b := build(), build()
	ca := a.ReallocateBalanced([]ids.ProcessID{1, 2, 3, 4}, 1)
	cb := b.ReallocateBalanced([]ids.ProcessID{1, 2, 3, 4}, 1)
	if !reflect.DeepEqual(ca, cb) {
		t.Fatal("balanced reallocation differs between identical replicas")
	}
	if a.Checksum() != b.Checksum() {
		t.Fatal("checksums differ")
	}
}

// TestMergeOrderIndependence: merging any permutation of snapshots yields
// identical databases — the property the join-time state exchange needs.
func TestMergeOrderIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build 3 divergent replicas.
		snaps := make([]Snapshot, 3)
		for r := range snaps {
			db := New("u")
			for i := 0; i < 5+rng.Intn(5); i++ {
				s := db.CreateSession(ids.ClientID(rng.Intn(10)))
				db.SetAllocation(s.ID, ids.ProcessID(1+rng.Intn(4)), nil)
				db.UpdateContext(s.ID, []byte{byte(rng.Intn(255))}, uint64(rng.Intn(5)+1))
			}
			snaps[r] = db.Snapshot()
		}
		perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}}
		var sums [][32]byte
		for _, perm := range perms {
			db := New("u")
			for _, i := range perm {
				db.Merge(snaps[i])
			}
			sums = append(sums, db.Checksum())
		}
		return sums[0] == sums[1] && sums[1] == sums[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPreferSessionTotalPreference(t *testing.T) {
	// For distinct records, exactly one of prefer(a,b) / prefer(b,a) holds.
	f := func(stampA, stampB uint8, ctxA, ctxB byte, pA, pB uint8) bool {
		a := &Session{Stamp: uint64(stampA % 3), Context: []byte{ctxA}, Primary: ids.ProcessID(pA % 3)}
		b := &Session{Stamp: uint64(stampB % 3), Context: []byte{ctxB}, Primary: ids.ProcessID(pB % 3)}
		ab, ba := preferSession(a, b), preferSession(b, a)
		same := a.Stamp == b.Stamp && ctxA == ctxB && a.Primary == b.Primary
		if same {
			return !ab && !ba
		}
		return ab != ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSessionsOfAndLoads(t *testing.T) {
	db := New("u")
	s1 := db.CreateSession(1)
	s2 := db.CreateSession(2)
	db.SetAllocation(s1.ID, 1, []ids.ProcessID{2})
	db.SetAllocation(s2.ID, 1, nil)
	if got := db.SessionsOf(1); !reflect.DeepEqual(got, []ids.SessionID{1, 2}) {
		t.Fatalf("SessionsOf = %v", got)
	}
	if db.PrimaryLoad(1) != 2 || db.PrimaryLoad(2) != 0 {
		t.Fatal("PrimaryLoad wrong")
	}
	if db.GroupLoad(2) != 1 {
		t.Fatal("GroupLoad wrong")
	}
	if db.String() == "" {
		t.Fatal("String empty")
	}
	db.SetAllocation(999, 1, nil) // unknown session: no-op
}
