package unitdb

import (
	"fmt"
	"math/rand"
	"testing"

	"hafw/internal/ids"
)

// allocationFingerprint renders every session's allocation in session-ID
// order, so two databases can be compared for allocation agreement.
func allocationFingerprint(db *DB) string {
	out := ""
	for _, s := range db.Sessions() {
		out += fmt.Sprintf("%d->%d%v;", s.ID, s.Primary, s.Backups)
	}
	return out
}

// buildShuffled populates a database with the same 40 sessions (and a few
// tombstones), Put in a permuted order.
func buildShuffled(rng *rand.Rand) *DB {
	db := New("unit")
	order := rng.Perm(40)
	for _, i := range order {
		id := ids.SessionID(i + 1)
		if i%10 == 9 {
			// Tombstone before any record can land, as a rejoining
			// replica's merge might.
			db.Remove(id)
			continue
		}
		db.Put(Session{
			ID:      id,
			Client:  ids.ClientID(1000 + i),
			Primary: ids.ProcessID(i%3 + 1),
			Backups: []ids.ProcessID{ids.ProcessID(i%5 + 1)},
			Context: []byte{byte(i)},
			Stamp:   uint64(i),
		})
	}
	return db
}

// TestAllocationIndependentOfInsertionOrder is the replica-agreement
// property the determinism analyzer guards statically, checked
// dynamically: members that assembled identical databases through
// different event interleavings must compute identical allocations. 100
// shuffled insertion orders must produce byte-identical results from
// Allocate, Reallocate, and ReallocateBalanced.
func TestAllocationIndependentOfInsertionOrder(t *testing.T) {
	members := []ids.ProcessID{1, 2, 3, 4}
	shrunk := []ids.ProcessID{2, 3, 4}

	type result struct {
		realloc  string
		balanced string
		alloc    string
	}
	var want result
	for run := 0; run < 100; run++ {
		rng := rand.New(rand.NewSource(int64(run)))

		db := buildShuffled(rng)
		db.Reallocate(members, 1)
		got := result{realloc: allocationFingerprint(db)}

		db2 := buildShuffled(rng)
		db2.ReallocateBalanced(members, 1)
		got.balanced = allocationFingerprint(db2)

		// A view change shrinks the member set and a fresh session is
		// allocated on top of the reallocated state.
		db.Reallocate(shrunk, 2)
		s := db.CreateSession(9999)
		db.Allocate(s.ID, shrunk, 2)
		got.alloc = allocationFingerprint(db)

		if run == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("allocation depends on insertion order (run %d):\n got %+v\nwant %+v", run, got, want)
		}
	}
}

// TestMergeOrderIndependent checks the companion property for the
// join-time state exchange: merging the same snapshots in any order must
// converge every replica onto the same database.
func TestMergeOrderIndependent(t *testing.T) {
	snaps := make([]Snapshot, 4)
	for i := range snaps {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		snaps[i] = buildShuffled(rng).Snapshot()
	}

	var want string
	for run := 0; run < 100; run++ {
		rng := rand.New(rand.NewSource(int64(run)))
		db := New("unit")
		for _, i := range rng.Perm(len(snaps)) {
			db.Merge(snaps[i])
		}
		db.Reallocate([]ids.ProcessID{1, 2, 3}, 1)
		got := allocationFingerprint(db)
		if run == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("merge result depends on merge order (run %d):\n got %s\nwant %s", run, got, want)
		}
	}
}
