package unitdb

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"hafw/internal/ids"
)

// This file implements delta state transfer for join-time state exchange.
// Instead of every content-group member multicasting its full database on
// every view change with joiners, members first exchange per-session
// version stamps (Offer) and then multicast only the records some member
// is missing or holds stale (DeltaFor). A cold member (empty database)
// naturally degenerates to receiving one full snapshot, sent by a single
// deterministically designated holder rather than by everyone.
//
// Correctness requirement: after every member merges every member's delta,
// all databases must be identical — the same post-state the full-snapshot
// exchange would have produced. DeltaFor guarantees this because a record
// is withheld only when the offers prove every member already holds a
// record that ties or beats it under the merge preference.

// StampEntry is one session's version stamp in an Offer: enough for peers
// to decide staleness without shipping the record.
type StampEntry struct {
	// ID identifies the session.
	ID ids.SessionID
	// Stamp is the record's context generation.
	Stamp uint64
	// Hash fingerprints the full record (client, allocation, stamp,
	// context), distinguishing divergent records with equal stamps (which
	// arise when partitioned primaries advanced the same session
	// independently).
	Hash uint64
	// CtxHash fingerprints the context alone. When records diverge only in
	// allocation metadata — the common case for a warm rejoiner whose WAL
	// predates a crash-driven reallocation — equal context hashes let the
	// sender elide the context bytes from its delta.
	CtxHash uint64
}

// Offer is the first phase of the delta exchange: one member's complete
// version-stamp vector.
type Offer struct {
	// NextSID is the sender's session-ID counter.
	NextSID uint64
	// Stamps lists every live session, sorted by ID.
	Stamps []StampEntry
	// Tombstones lists every removed session the sender knows of, sorted.
	Tombstones []ids.SessionID
}

// recordHash fingerprints a session record with FNV-1a; equal records hash
// equal at every replica (pure arithmetic over the record's fields).
func recordHash(s *Session) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(s.Client))
	put(uint64(s.Primary))
	put(uint64(len(s.Backups)))
	for _, b := range s.Backups {
		put(uint64(b))
	}
	put(s.Stamp)
	put(uint64(len(s.Context)))
	h.Write(s.Context)
	return h.Sum64()
}

// ctxHash fingerprints a session context alone with FNV-1a.
func ctxHash(ctx []byte) uint64 {
	h := fnv.New64a()
	h.Write(ctx)
	return h.Sum64()
}

// Offer exports this database's version stamps for the exchange.
func (db *DB) Offer() Offer {
	o := Offer{NextSID: db.nextSID, Tombstones: db.TombstoneIDs()}
	for _, s := range db.Sessions() {
		o.Stamps = append(o.Stamps, StampEntry{
			ID: s.ID, Stamp: s.Stamp, Hash: recordHash(s), CtxHash: ctxHash(s.Context),
		})
	}
	return o
}

// DeltaFor computes the partial snapshot this member should multicast in
// the second phase of the exchange, given every member's offer (the map
// must include self's own offer). All members run this with the same
// offers, so the union of the returned deltas is the same at every member
// and merging them converges everywhere.
//
// Selection per live session:
//   - members whose stamp is below the maximum never send (their record
//     loses the merge);
//   - if all maximum-stamp holders agree on the record hash, exactly one
//     of them (the least process ID) sends, and only if some member is
//     missing the record or holds a staler one;
//   - if maximum-stamp holders disagree (divergent records with equal
//     stamps), the least holder of each distinct candidate sends it —
//     one copy per candidate, not per holder — so every member can run
//     the deterministic byte-wise tie-break over all candidates.
//
// Tombstones spread the same way: the least member holding a tombstone
// sends it whenever some member lacks it.
//
//hafw:deterministic
func (db *DB) DeltaFor(self ids.ProcessID, offers map[ids.ProcessID]Offer) Snapshot {
	out := Snapshot{Unit: db.Unit, NextSID: db.nextSID}

	members := make([]ids.ProcessID, 0, len(offers))
	for p := range offers {
		members = append(members, p)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	type peerIndex struct {
		stamps map[ids.SessionID]StampEntry
		tombs  map[ids.SessionID]bool
	}
	idx := make(map[ids.ProcessID]peerIndex, len(offers))
	for p, o := range offers {
		pi := peerIndex{
			stamps: make(map[ids.SessionID]StampEntry, len(o.Stamps)),
			tombs:  make(map[ids.SessionID]bool, len(o.Tombstones)),
		}
		for _, e := range o.Stamps {
			pi.stamps[e.ID] = e
		}
		for _, t := range o.Tombstones {
			pi.tombs[t] = true
		}
		idx[p] = pi
	}

	// Tombstones: designated holder sends to members that lack them.
	for _, t := range db.TombstoneIDs() {
		designated, needy := ids.Nil, false
		for _, p := range members {
			if idx[p].tombs[t] {
				if designated == ids.Nil {
					designated = p
				}
			} else {
				needy = true
			}
		}
		if needy && designated == self {
			out.Tombstones = append(out.Tombstones, t)
		}
	}

	for _, s := range db.Sessions() {
		// A tombstone anywhere means the session is dead; its holder will
		// spread the tombstone, so never ship the record.
		dead := false
		for _, p := range members {
			if idx[p].tombs[s.ID] {
				dead = true
				break
			}
		}
		if dead {
			continue
		}

		maxStamp := s.Stamp
		for _, p := range members {
			if e, ok := idx[p].stamps[s.ID]; ok && e.Stamp > maxStamp {
				maxStamp = e.Stamp
			}
		}
		if s.Stamp < maxStamp {
			continue // our record loses; the winner's holder sends
		}

		// designated is the least max-stamp holder of OUR candidate (offers
		// include self, so it is never Nil when we are at max stamp).
		myHash, myCtx := recordHash(s), ctxHash(s.Context)
		designated, divergent, ctxDivergent, needy := ids.Nil, false, false, false
		for _, p := range members {
			e, ok := idx[p].stamps[s.ID]
			switch {
			case !ok || e.Stamp < maxStamp:
				needy = true
			case e.Hash != myHash:
				divergent = true
				if e.CtxHash != myCtx {
					ctxDivergent = true
				}
			case designated == ids.Nil:
				designated = p
			}
		}
		if designated != self || !(needy || divergent) {
			continue
		}
		if !needy && !ctxDivergent {
			// Every member holds this session at the max stamp with an
			// identical context: the divergence is metadata only
			// (allocation), so ship the record without its context bytes.
			// Receivers substitute their own (identical) context before
			// merging, and the tie-break still converges because it orders
			// equal-context records by allocation.
			meta := *s.clone()
			meta.Context = nil
			out.Meta = append(out.Meta, meta)
			continue
		}
		out.Sessions = append(out.Sessions, *s.clone())
	}
	return out
}
