package unitdb

import (
	"fmt"
	"testing"

	"hafw/internal/ids"
)

// exchange simulates the two-phase delta exchange among the given
// databases and merges every delta into every database, returning the
// total number of session records shipped.
func exchange(t *testing.T, dbs map[ids.ProcessID]*DB) int {
	t.Helper()
	offers := make(map[ids.ProcessID]Offer, len(dbs))
	for p, db := range dbs {
		offers[p] = db.Offer()
	}
	deltas := make(map[ids.ProcessID]Snapshot, len(dbs))
	shipped := 0
	for p, db := range dbs {
		deltas[p] = db.DeltaFor(p, offers)
		shipped += len(deltas[p].Sessions)
	}
	for _, db := range dbs {
		for _, d := range deltas {
			db.Merge(d)
		}
	}
	return shipped
}

// assertConverged fails unless every database has the same checksum, and
// that checksum equals the result of a full-snapshot merge of the
// pre-exchange states.
func assertConverged(t *testing.T, dbs map[ids.ProcessID]*DB, want [32]byte) {
	t.Helper()
	for p, db := range dbs {
		if got := db.Checksum(); got != want {
			t.Fatalf("db of p%d diverged after delta exchange:\n got %x\nwant %x", p, got, want)
		}
	}
}

// fullMergeChecksum computes the reference post-state: every member merges
// every member's full snapshot.
func fullMergeChecksum(dbs map[ids.ProcessID]*DB) [32]byte {
	var snaps []Snapshot
	for _, db := range dbs {
		snaps = append(snaps, db.Snapshot())
	}
	ref := New(snaps[0].Unit)
	for _, s := range snaps {
		ref.Merge(s)
	}
	return ref.Checksum()
}

func seededDB(unit ids.UnitName, sessions int) *DB {
	db := New(unit)
	members := []ids.ProcessID{1, 2, 3}
	for i := 0; i < sessions; i++ {
		s := db.CreateSession(ids.ClientID(100 + i))
		db.Allocate(s.ID, members, 1)
		db.UpdateContext(s.ID, []byte(fmt.Sprintf("ctx-%d", i)), 1)
	}
	return db
}

func clones(db *DB, pids ...ids.ProcessID) map[ids.ProcessID]*DB {
	out := make(map[ids.ProcessID]*DB, len(pids))
	snap := db.Snapshot()
	for _, p := range pids {
		cp := New(db.Unit)
		cp.Restore(snap)
		out[p] = cp
	}
	return out
}

func TestDeltaIdenticalReplicasShipNothing(t *testing.T) {
	dbs := clones(seededDB("u", 8), 1, 2, 3)
	want := fullMergeChecksum(dbs)
	if shipped := exchange(t, dbs); shipped != 0 {
		t.Fatalf("identical replicas shipped %d records, want 0", shipped)
	}
	assertConverged(t, dbs, want)
}

func TestDeltaColdJoinerGetsOneFullCopy(t *testing.T) {
	dbs := clones(seededDB("u", 8), 1, 2)
	dbs[3] = New("u") // cold joiner
	want := fullMergeChecksum(dbs)
	shipped := exchange(t, dbs)
	if shipped != 8 {
		t.Fatalf("cold join shipped %d records, want exactly one full copy (8)", shipped)
	}
	assertConverged(t, dbs, want)
}

func TestDeltaStaleRejoinerGetsOnlyChanged(t *testing.T) {
	base := seededDB("u", 10)
	dbs := clones(base, 1, 2, 3)
	// Member 3 went away; 1 and 2 advanced two sessions and closed one.
	for _, p := range []ids.ProcessID{1, 2} {
		dbs[p].UpdateContext(1, []byte("fresh-1"), 9)
		dbs[p].UpdateContext(2, []byte("fresh-2"), 9)
		dbs[p].Remove(3)
	}
	want := fullMergeChecksum(dbs)
	shipped := exchange(t, dbs)
	if shipped != 2 {
		t.Fatalf("stale rejoin shipped %d records, want 2 (only the changed sessions)", shipped)
	}
	assertConverged(t, dbs, want)
	if dbs[3].Get(3) != nil || !dbs[3].Tombstoned(3) {
		t.Fatal("rejoiner did not learn the close of session 3")
	}
}

func TestDeltaTombstoneBeatsStaleRecord(t *testing.T) {
	base := seededDB("u", 4)
	dbs := clones(base, 1, 2, 3)
	// 1 and 2 closed session 2 while 3 was partitioned away; 3 even has a
	// fresher context for it. The close must still win everywhere.
	dbs[1].Remove(2)
	dbs[2].Remove(2)
	dbs[3].UpdateContext(2, []byte("doomed-but-fresh"), 99)
	want := fullMergeChecksum(dbs)
	exchange(t, dbs)
	assertConverged(t, dbs, want)
	for p, db := range dbs {
		if db.Get(2) != nil {
			t.Fatalf("p%d resurrected closed session 2", p)
		}
	}
}

func TestDeltaDivergentEqualStampsConverge(t *testing.T) {
	base := seededDB("u", 4)
	dbs := clones(base, 1, 2, 3)
	// Partitioned primaries advanced session 1 to the same stamp with
	// different contexts; every max-stamp holder must ship its candidate.
	dbs[1].UpdateContext(1, []byte("side-a"), 7)
	dbs[2].UpdateContext(1, []byte("side-b"), 7)
	want := fullMergeChecksum(dbs)
	exchange(t, dbs)
	assertConverged(t, dbs, want)
}

func TestDeltaMetadataDivergenceElidesContext(t *testing.T) {
	// A warm rejoiner's WAL predates a crash-driven reallocation: every
	// member holds every session at the same stamp with identical bytes,
	// but the rejoiner's allocation fields are stale. The exchange must
	// converge the metadata without reshipping a single context.
	base := seededDB("u", 8)
	dbs := clones(base, 1, 2, 3)
	for sid := ids.SessionID(1); sid <= 8; sid++ {
		dbs[1].SetAllocation(sid, 2, []ids.ProcessID{1})
		dbs[2].SetAllocation(sid, 2, []ids.ProcessID{1})
	}
	want := fullMergeChecksum(dbs)
	offers := make(map[ids.ProcessID]Offer, len(dbs))
	for p, db := range dbs {
		offers[p] = db.Offer()
	}
	for p, db := range dbs {
		d := db.DeltaFor(p, offers)
		if len(d.Sessions) != 0 {
			t.Fatalf("p%d shipped %d full records for metadata-only divergence, want 0", p, len(d.Sessions))
		}
		for _, m := range d.Meta {
			if m.Context != nil {
				t.Fatalf("p%d shipped a context inside a Meta record for session %d", p, m.ID)
			}
		}
		for _, db2 := range dbs {
			db2.Merge(d)
		}
	}
	assertConverged(t, dbs, want)
}

func TestDeltaMatchesFullExchangeRandomized(t *testing.T) {
	// Drive three replicas through divergent histories and check the delta
	// exchange always lands on the full-exchange post-state.
	for seed := 0; seed < 20; seed++ {
		base := seededDB("u", 6)
		dbs := clones(base, 1, 2, 3)
		r := uint64(seed)*2654435761 + 1
		next := func(n uint64) uint64 { r = r*6364136223846793005 + 1442695040888963407; return r % n }
		for op := 0; op < 12; op++ {
			p := ids.ProcessID(1 + next(3))
			sid := ids.SessionID(1 + next(6))
			switch next(3) {
			case 0:
				dbs[p].UpdateContext(sid, []byte(fmt.Sprintf("s%d-%d", seed, op)), 2+next(8))
			case 1:
				dbs[p].Remove(sid)
			case 2:
				s := dbs[p].CreateSession(ids.ClientID(1000 + next(50)))
				dbs[p].UpdateContext(s.ID, []byte("new"), 1)
			}
		}
		want := fullMergeChecksum(dbs)
		exchange(t, dbs)
		assertConverged(t, dbs, want)
	}
}

func TestPutAdvancesCounter(t *testing.T) {
	db := New("u")
	db.Put(Session{ID: 7, Client: 70})
	if got := db.CreateSession(71).ID; got != 8 {
		t.Fatalf("CreateSession after Put(7) = %d, want 8", got)
	}
	db.Remove(7)
	db.Put(Session{ID: 7, Client: 70}) // tombstoned: must stay dead
	if db.Get(7) != nil {
		t.Fatal("Put resurrected a tombstoned session")
	}
}
