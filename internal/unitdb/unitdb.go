// Package unitdb implements the unit database of the paper (Section 3.1):
// the per-content-unit replicated record of live sessions, their
// primary/backup allocations, and the periodically propagated session
// context.
//
// The database is replicated by applying the same totally ordered
// operations at every member of a content group; every mutating method is
// deterministic, so replicas that process identical operation sequences
// hold identical state (the property tests verify this). The allocation
// functions are likewise deterministic, which is what lets content-group
// members independently select the same primary and backups with no
// message exchange after a crash-only view change (Section 3.4).
package unitdb

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"hafw/internal/ids"
	"hafw/internal/wire"
)

// Session is one client session's record in the unit database.
type Session struct {
	// ID identifies the session; allocated in total order, so all replicas
	// agree.
	ID ids.SessionID
	// Client is the session's client.
	Client ids.ClientID
	// Primary is the server currently responsible for responding.
	Primary ids.ProcessID
	// Backups are the session-group members besides the primary, in
	// preference order for takeover.
	Backups []ids.ProcessID
	// Context is the last propagated session context, opaque to the
	// framework (the service defines its encoding).
	Context []byte
	// Stamp is the context generation number; higher is fresher. It
	// orders context propagations and resolves merge conflicts.
	Stamp uint64
}

// clone deep-copies a session record.
func (s *Session) clone() *Session {
	cp := *s
	cp.Backups = append([]ids.ProcessID(nil), s.Backups...)
	cp.Context = append([]byte(nil), s.Context...)
	return &cp
}

// SessionGroup returns the session group membership: primary first, then
// backups.
func (s *Session) SessionGroup() []ids.ProcessID {
	out := make([]ids.ProcessID, 0, 1+len(s.Backups))
	if s.Primary != ids.Nil {
		out = append(out, s.Primary)
	}
	return append(out, s.Backups...)
}

// InGroup reports whether p is the primary or a backup.
func (s *Session) InGroup(p ids.ProcessID) bool {
	if s.Primary == p {
		return true
	}
	for _, b := range s.Backups {
		if b == p {
			return true
		}
	}
	return false
}

// DB is the unit database for one content unit. It is a plain data
// structure: the caller (the framework server) serializes access by
// driving it from the single GCS event goroutine.
type DB struct {
	// Unit names the content unit.
	Unit ids.UnitName

	sessions map[ids.SessionID]*Session
	// tombstones records removed session IDs. Session IDs are allocated
	// from a monotone counter and never reused, so "session X was closed"
	// is permanent truth; tombstones let merges (and rejoining replicas
	// recovering a stale database from disk) distinguish "closed while you
	// were away" from "never heard of it", instead of resurrecting closed
	// sessions. They accumulate until PruneTombstones.
	tombstones map[ids.SessionID]bool
	nextSID    uint64
}

// New creates an empty database for a unit.
func New(unit ids.UnitName) *DB {
	return &DB{
		Unit:       unit,
		sessions:   make(map[ids.SessionID]*Session),
		tombstones: make(map[ids.SessionID]bool),
	}
}

// Len returns the number of live sessions.
func (db *DB) Len() int { return len(db.sessions) }

// CreateSession registers a new session for a client and returns its
// record. Session IDs are assigned from a deterministic counter, so
// replicas applying the same operation sequence assign the same IDs.
func (db *DB) CreateSession(client ids.ClientID) *Session {
	db.nextSID++
	s := &Session{ID: ids.SessionID(db.nextSID), Client: client}
	db.sessions[s.ID] = s
	return s
}

// Get returns the session record, or nil if unknown. The returned pointer
// is live; mutate it only through DB methods.
func (db *DB) Get(sid ids.SessionID) *Session {
	return db.sessions[sid]
}

// Remove deletes a session (client ended it, or it was abandoned) and
// leaves a tombstone so later merges cannot resurrect it.
func (db *DB) Remove(sid ids.SessionID) {
	delete(db.sessions, sid)
	db.tombstones[sid] = true
}

// Put inserts (or replaces) a session record wholesale, advancing the ID
// counter past it. It is the replay primitive used by the durable store's
// recovery path; normal operation goes through CreateSession.
func (db *DB) Put(s Session) {
	if db.tombstones[s.ID] {
		return
	}
	db.sessions[s.ID] = s.clone()
	if uint64(s.ID) > db.nextSID {
		db.nextSID = uint64(s.ID)
	}
}

// Tombstoned reports whether a session was removed.
func (db *DB) Tombstoned(sid ids.SessionID) bool { return db.tombstones[sid] }

// TombstoneIDs returns all tombstoned session IDs, sorted.
func (db *DB) TombstoneIDs() []ids.SessionID {
	out := make([]ids.SessionID, 0, len(db.tombstones))
	for t := range db.tombstones {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PruneTombstones drops tombstones for sessions with IDs below the given
// bound (an operator/GC hook: once every replica that could still carry a
// live record below the bound has merged, the tombstones are dead weight).
func (db *DB) PruneTombstones(before ids.SessionID) {
	for t := range db.tombstones {
		if t < before {
			delete(db.tombstones, t)
		}
	}
}

// Sessions returns all session records sorted by ID.
func (db *DB) Sessions() []*Session {
	out := make([]*Session, 0, len(db.sessions))
	for _, s := range db.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// UpdateContext records a context propagation. Stale stamps (≤ current)
// are ignored, making propagation idempotent and reordering-safe across
// merges.
func (db *DB) UpdateContext(sid ids.SessionID, ctx []byte, stamp uint64) bool {
	s := db.sessions[sid]
	if s == nil || stamp <= s.Stamp {
		return false
	}
	s.Context = append([]byte(nil), ctx...)
	s.Stamp = stamp
	return true
}

// SetAllocation records a session's primary and backups.
func (db *DB) SetAllocation(sid ids.SessionID, primary ids.ProcessID, backups []ids.ProcessID) {
	s := db.sessions[sid]
	if s == nil {
		return
	}
	s.Primary = primary
	s.Backups = append([]ids.ProcessID(nil), backups...)
}

// PrimaryLoad returns the number of sessions for which p is primary.
func (db *DB) PrimaryLoad(p ids.ProcessID) int {
	n := 0
	for _, s := range db.sessions {
		if s.Primary == p {
			n++
		}
	}
	return n
}

// GroupLoad returns the number of sessions in whose session group p
// participates (primary or backup).
func (db *DB) GroupLoad(p ids.ProcessID) int {
	n := 0
	for _, s := range db.sessions {
		if s.InGroup(p) {
			n++
		}
	}
	return n
}

// SessionsOf returns the IDs of sessions where p is primary, sorted.
func (db *DB) SessionsOf(p ids.ProcessID) []ids.SessionID {
	var out []ids.SessionID
	for _, s := range db.sessions {
		if s.Primary == p {
			out = append(out, s.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Allocate deterministically selects a primary and up to `backups` backup
// servers for one session from the given members (the current content
// group view), following the paper's preference order: keep the former
// primary if alive; otherwise promote the first surviving backup;
// otherwise pick the least-loaded member. Backups are then filled with the
// least-loaded remaining members. Loads are evaluated against the current
// database, so identical databases yield identical choices everywhere.
//
// The session's allocation is updated in place and returned.
//
//hafw:deterministic
func (db *DB) Allocate(sid ids.SessionID, members []ids.ProcessID, backups int) (ids.ProcessID, []ids.ProcessID) {
	s := db.sessions[sid]
	if s == nil || len(members) == 0 {
		return ids.Nil, nil
	}
	alive := make(map[ids.ProcessID]bool, len(members))
	for _, m := range members {
		alive[m] = true
	}

	primary := ids.Nil
	if alive[s.Primary] {
		primary = s.Primary
	} else {
		for _, b := range s.Backups {
			if alive[b] {
				primary = b
				break
			}
		}
	}
	if primary == ids.Nil {
		primary = db.leastLoaded(members, map[ids.ProcessID]bool{})
	}

	exclude := map[ids.ProcessID]bool{primary: true}
	var bk []ids.ProcessID
	// Prefer surviving former backups to minimize context loss.
	for _, b := range s.Backups {
		if len(bk) >= backups {
			break
		}
		if alive[b] && !exclude[b] {
			bk = append(bk, b)
			exclude[b] = true
		}
	}
	for len(bk) < backups {
		next := db.leastLoaded(members, exclude)
		if next == ids.Nil {
			break
		}
		bk = append(bk, next)
		exclude[next] = true
	}

	s.Primary = primary
	s.Backups = bk
	return primary, append([]ids.ProcessID(nil), bk...)
}

// leastLoaded returns the member with the smallest group load (ties broken
// by smaller ProcessID), excluding the given set; Nil if none remain.
func (db *DB) leastLoaded(members []ids.ProcessID, exclude map[ids.ProcessID]bool) ids.ProcessID {
	best := ids.Nil
	bestLoad := 0
	for _, m := range members {
		if exclude[m] {
			continue
		}
		load := db.GroupLoad(m)
		if best == ids.Nil || load < bestLoad || (load == bestLoad && m < best) {
			best = m
			bestLoad = load
		}
	}
	return best
}

// Change describes one session's reallocation.
type Change struct {
	// SessionID identifies the session.
	SessionID ids.SessionID
	// OldPrimary and NewPrimary record the migration (equal if unchanged).
	OldPrimary, NewPrimary ids.ProcessID
	// OldBackups and NewBackups record backup set changes.
	OldBackups, NewBackups []ids.ProcessID
}

// PrimaryChanged reports whether the session migrated.
func (c Change) PrimaryChanged() bool { return c.OldPrimary != c.NewPrimary }

// Reallocate recomputes every session's allocation against a new member
// set (after a view change), in session-ID order so replicas make
// identical incremental load decisions. It returns the changes.
//
//hafw:deterministic
func (db *DB) Reallocate(members []ids.ProcessID, backups int) []Change {
	var changes []Change
	for _, s := range db.Sessions() {
		oldP, oldB := s.Primary, append([]ids.ProcessID(nil), s.Backups...)
		newP, newB := db.Allocate(s.ID, members, backups)
		changes = append(changes, Change{
			SessionID:  s.ID,
			OldPrimary: oldP, NewPrimary: newP,
			OldBackups: oldB, NewBackups: newB,
		})
	}
	return changes
}

// ReallocateBalanced recomputes every allocation against a new member set
// while evening out primary load: a session keeps its primary only while
// that server is below the fair-share target, otherwise it migrates to the
// least-loaded member (paper Section 3.4: after joins, "the allocation is
// done ... in such a way as to balance the load fairly"). Deterministic
// like Reallocate; used after join-time state exchanges, while crash-only
// view changes use the movement-minimizing Reallocate.
//
//hafw:deterministic
func (db *DB) ReallocateBalanced(members []ids.ProcessID, backups int) []Change {
	if len(members) == 0 {
		return db.Reallocate(members, backups)
	}
	alive := make(map[ids.ProcessID]bool, len(members))
	for _, m := range members {
		alive[m] = true
	}
	target := (len(db.sessions) + len(members) - 1) / len(members)
	if target == 0 {
		target = 1
	}
	counts := make(map[ids.ProcessID]int, len(members))

	var changes []Change
	for _, s := range db.Sessions() {
		oldP, oldB := s.Primary, append([]ids.ProcessID(nil), s.Backups...)

		newP := ids.Nil
		if alive[oldP] && counts[oldP] < target {
			newP = oldP
		} else {
			for _, b := range s.Backups {
				if alive[b] && counts[b] < target {
					newP = b
					break
				}
			}
		}
		if newP == ids.Nil {
			for _, m := range members {
				if newP == ids.Nil || counts[m] < counts[newP] {
					newP = m
				}
			}
		}
		counts[newP]++
		s.Primary = newP

		// Backups: keep surviving former backups, fill with the least
		// group-loaded members.
		exclude := map[ids.ProcessID]bool{newP: true}
		var bk []ids.ProcessID
		for _, b := range oldB {
			if len(bk) >= backups {
				break
			}
			if alive[b] && !exclude[b] {
				bk = append(bk, b)
				exclude[b] = true
			}
		}
		for len(bk) < backups {
			next := db.leastLoaded(members, exclude)
			if next == ids.Nil {
				break
			}
			bk = append(bk, next)
			exclude[next] = true
		}
		s.Backups = bk

		changes = append(changes, Change{
			SessionID:  s.ID,
			OldPrimary: oldP, NewPrimary: newP,
			OldBackups: oldB, NewBackups: append([]ids.ProcessID(nil), bk...),
		})
	}
	return changes
}

// Snapshot is a serializable copy of the database, used for join-time
// state exchange (paper Section 3.4: "servers first exchange information
// about clients"). It rides inside core.StateDelta's typed Snap field
// rather than being dispatched on its own.
//
//hafw:handledby -
type Snapshot struct {
	// Unit names the content unit.
	Unit ids.UnitName
	// NextSID is the session-ID counter.
	NextSID uint64
	// Sessions holds the session records. A snapshot produced by DeltaFor
	// is partial: it holds only the records the receiving members are
	// missing or hold stale.
	Sessions []Session
	// Tombstones lists removed session IDs, so merging a snapshot can
	// never resurrect a closed session.
	Tombstones []ids.SessionID
	// Meta holds context-elided records: sessions every member already
	// stores at the same stamp with an identical context, diverging only
	// in allocation metadata. Their Context field is nil on the wire; the
	// receiver substitutes its own copy before merging.
	Meta []Session
}

// WireName implements wire.Message so snapshots can travel inside
// framework state-exchange messages.
func (Snapshot) WireName() string { return "unitdb.Snapshot" }

func init() { wire.Register(Snapshot{}) }

// Snapshot returns a deep copy of the database state.
func (db *DB) Snapshot() Snapshot {
	snap := Snapshot{Unit: db.Unit, NextSID: db.nextSID, Tombstones: db.TombstoneIDs()}
	for _, s := range db.Sessions() {
		snap.Sessions = append(snap.Sessions, *s.clone())
	}
	return snap
}

// Restore replaces the database state with a snapshot.
func (db *DB) Restore(snap Snapshot) {
	db.Unit = snap.Unit
	db.nextSID = snap.NextSID
	db.sessions = make(map[ids.SessionID]*Session, len(snap.Sessions))
	for i := range snap.Sessions {
		s := snap.Sessions[i].clone()
		db.sessions[s.ID] = s
	}
	db.tombstones = make(map[ids.SessionID]bool, len(snap.Tombstones))
	for _, t := range snap.Tombstones {
		db.tombstones[t] = true
	}
}

// Merge folds another replica's snapshot into this database (partition
// heal / joiner state exchange). Unknown sessions are adopted; for
// sessions known to both, the record with the higher stamp wins wholesale
// (context and allocation); equal stamps are broken by a deterministic
// byte-wise comparison, so merging any set of snapshots in any order
// yields the same result at every replica — which is what lets members run
// the join-time state exchange and then reallocate deterministically with
// no further coordination. The session counter takes the maximum, so
// future IDs never collide.
//
//hafw:deterministic
func (db *DB) Merge(snap Snapshot) {
	if snap.NextSID > db.nextSID {
		db.nextSID = snap.NextSID
	}
	// Tombstones beat any record, in any merge order: a closed session
	// never comes back.
	for _, t := range snap.Tombstones {
		db.tombstones[t] = true
		delete(db.sessions, t)
	}
	for i := range snap.Sessions {
		in := &snap.Sessions[i]
		if db.tombstones[in.ID] {
			continue
		}
		cur, ok := db.sessions[in.ID]
		if !ok {
			db.sessions[in.ID] = in.clone()
			continue
		}
		if preferSession(in, cur) {
			db.sessions[in.ID] = in.clone()
		}
	}
	for i := range snap.Meta {
		in := &snap.Meta[i]
		cur, ok := db.sessions[in.ID]
		if db.tombstones[in.ID] || !ok || cur.Stamp != in.Stamp {
			// Elision promised every member holds the record at this stamp;
			// anything else means our copy has moved on, and a contextless
			// record must never displace a real one.
			continue
		}
		cand := in.clone()
		cand.Context = append([]byte(nil), cur.Context...)
		if preferSession(cand, cur) {
			db.sessions[in.ID] = cand
		}
	}
}

// preferSession reports whether candidate should replace current in a
// merge. The relation is a strict total preference over distinct records,
// making merge order-independent.
func preferSession(candidate, current *Session) bool {
	if candidate.Stamp != current.Stamp {
		return candidate.Stamp > current.Stamp
	}
	if c := compareBytes(candidate.Context, current.Context); c != 0 {
		return c < 0
	}
	if candidate.Primary != current.Primary {
		return candidate.Primary < current.Primary
	}
	if c := compareProcs(candidate.Backups, current.Backups); c != 0 {
		return c < 0
	}
	// Client completes the total order: sessions created concurrently in
	// disjoint partitions can collide on every field above while belonging
	// to different clients.
	return candidate.Client < current.Client
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func compareProcs(a, b []ids.ProcessID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Checksum returns a digest of the full database state. Replicas that
// applied the same operations have equal checksums; the framework's tests
// and the trace invariant checker use this to verify replica consistency.
func (db *DB) Checksum() [32]byte {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(db.Unit))
	put(db.nextSID)
	put(uint64(len(db.tombstones)))
	for _, t := range db.TombstoneIDs() {
		put(uint64(t))
	}
	for _, s := range db.Sessions() {
		put(uint64(s.ID))
		put(uint64(s.Client))
		put(uint64(s.Primary))
		put(uint64(len(s.Backups)))
		for _, b := range s.Backups {
			put(uint64(b))
		}
		put(s.Stamp)
		put(uint64(len(s.Context)))
		h.Write(s.Context)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// String implements fmt.Stringer (diagnostic).
func (db *DB) String() string {
	return fmt.Sprintf("unitdb(%s, %d sessions)", db.Unit, len(db.sessions))
}
