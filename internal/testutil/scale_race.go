//go:build race

// Package testutil provides knobs shared by test harnesses.
package testutil

// TimeScale multiplies protocol timer constants in test harnesses; under
// the race detector everything runs several times slower, so failure
// detection must be proportionally more patient to keep views precise.
const TimeScale = 6
