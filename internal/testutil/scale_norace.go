//go:build !race

// Package testutil provides knobs shared by test harnesses.
package testutil

// TimeScale multiplies protocol timer constants in test harnesses. It is 1
// normally and larger under the race detector, whose instrumentation slows
// goroutines enough to starve aggressive failure-detection timeouts.
const TimeScale = 1
