package membership

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"hafw/internal/fd"
	"hafw/internal/ids"
	"hafw/internal/testutil"
	"hafw/internal/transport/memnet"
	"hafw/internal/wire"
)

// testNode wires transport + failure detector + membership for one process.
type testNode struct {
	id  ids.ProcessID
	svc *Service
	det *fd.Detector

	mu       sync.Mutex
	views    []View
	installs []map[ids.ProcessID][]byte
}

func (n *testNode) lastView() View {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.views) == 0 {
		return View{}
	}
	return n.views[len(n.views)-1]
}

func (n *testNode) viewHistory() []View {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]View, len(n.views))
	copy(out, n.views)
	return out
}

// cluster is a set of test nodes sharing a memnet.
type cluster struct {
	net   *memnet.Network
	nodes map[ids.ProcessID]*testNode
}

func newCluster(t *testing.T, pids ...ids.ProcessID) *cluster {
	t.Helper()
	c := &cluster{net: memnet.New(memnet.Config{}), nodes: make(map[ids.ProcessID]*testNode)}
	t.Cleanup(c.close)
	for _, pid := range pids {
		c.addNode(t, pid, pids)
	}
	return c
}

func (c *cluster) addNode(t *testing.T, pid ids.ProcessID, world []ids.ProcessID) *testNode {
	t.Helper()
	ep, err := c.net.Attach(ids.ProcessEndpoint(pid))
	if err != nil {
		t.Fatalf("attach %v: %v", pid, err)
	}
	n := &testNode{id: pid}
	n.det = fd.New(fd.Config{
		Self:     pid,
		Interval: 10 * time.Millisecond * testutil.TimeScale,
		Timeout:  60 * time.Millisecond * testutil.TimeScale,
		Send:     ep,
		OnChange: func(r []ids.ProcessID) { n.svc.ReachableChanged(r) },
	})
	n.svc = New(Config{
		Self:         pid,
		Send:         ep,
		Detector:     n.det,
		RoundTimeout: 100 * time.Millisecond * testutil.TimeScale,
		Hooks: NopHooks{OnInstall: func(v View, states map[ids.ProcessID][]byte) {
			n.mu.Lock()
			defer n.mu.Unlock()
			n.installs = append(n.installs, states)
		}},
		OnView: func(v View) {
			n.mu.Lock()
			defer n.mu.Unlock()
			n.views = append(n.views, v)
		},
	})
	ep.SetHandler(func(env wire.Envelope) {
		from, ok := env.From.Process()
		if !ok {
			return
		}
		n.det.Observe(from)
		switch env.Payload.(type) {
		case Propose, Accept, Commit, Nudge:
			n.svc.Handle(from, env.Payload)
		}
	})
	n.det.SetPeers(world)
	n.svc.Start()
	n.det.Start()
	c.nodes[pid] = n
	return n
}

func (c *cluster) close() {
	for _, n := range c.nodes {
		n.det.Stop()
		n.svc.Stop()
	}
	c.net.Close()
}

func (c *cluster) eps(pids ...ids.ProcessID) []ids.EndpointID {
	out := make([]ids.EndpointID, len(pids))
	for i, p := range pids {
		out[i] = ids.ProcessEndpoint(p)
	}
	return out
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout * testutil.TimeScale)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for: %s", msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// converged reports whether every listed node's last view has exactly the
// given members and all agree on the view ID.
func (c *cluster) converged(members ...ids.ProcessID) bool {
	want := normalizeMembers(members)
	var vid ids.ViewID
	for i, pid := range want {
		v := c.nodes[pid].svc.View()
		if !reflect.DeepEqual(v.Members, want) {
			return false
		}
		if i == 0 {
			vid = v.ID
		} else if v.ID != vid {
			return false
		}
	}
	return true
}

func TestStableConvergence(t *testing.T) {
	c := newCluster(t, 1, 2, 3, 4)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3, 4) },
		"all 4 nodes install the same full view")
}

func TestCrashInstallsSurvivorView(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3) }, "initial view")

	c.net.Crash(ids.ProcessEndpoint(3))
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2) },
		"survivors install {1,2}")
}

func TestCoordinatorCrash(t *testing.T) {
	// Crash the coordinator (least pid): the next-lowest must take over.
	c := newCluster(t, 1, 2, 3)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3) }, "initial view")

	c.net.Crash(ids.ProcessEndpoint(1))
	waitFor(t, 5*time.Second, func() bool { return c.converged(2, 3) },
		"survivors install {2,3} with p2 coordinating")
	if got := c.nodes[2].lastView().Coordinator(); got != 2 {
		t.Errorf("new coordinator = %v, want 2", got)
	}
}

func TestPartitionBothSidesInstall(t *testing.T) {
	c := newCluster(t, 1, 2, 3, 4)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3, 4) }, "initial view")

	c.net.Partition(c.eps(1, 2), c.eps(3, 4))
	waitFor(t, 5*time.Second, func() bool {
		return c.converged(1, 2) && c.converged(3, 4)
	}, "each side installs its own view")

	v12 := c.nodes[1].lastView()
	v34 := c.nodes[3].lastView()
	if v12.ID == v34.ID {
		t.Errorf("disjoint partitions must not share a view ID: %v", v12.ID)
	}
}

func TestPartitionHealMerges(t *testing.T) {
	c := newCluster(t, 1, 2, 3, 4)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3, 4) }, "initial view")
	c.net.Partition(c.eps(1, 2), c.eps(3, 4))
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2) && c.converged(3, 4) }, "split")
	c.net.Heal()
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3, 4) }, "merged view after heal")
}

func TestViewMonotonicityAndSelfInclusion(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3) }, "initial view")
	c.net.Crash(ids.ProcessEndpoint(3))
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2) }, "survivor view")
	c.net.Revive(ids.ProcessEndpoint(3))
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3) }, "rejoin view")

	for pid, n := range c.nodes {
		hist := n.viewHistory()
		for i, v := range hist {
			if !v.Contains(pid) {
				t.Errorf("p%d installed a view excluding itself: %v", pid, v)
			}
			if i > 0 && !hist[i-1].ID.Less(v.ID) {
				t.Errorf("p%d views not monotone: %v then %v", pid, hist[i-1].ID, v.ID)
			}
		}
	}
}

func TestAgreedViewCarriesAllStates(t *testing.T) {
	// Virtual-synchrony precondition: members that install a view received
	// a state blob from every member of that view.
	c := newCluster(t, 1, 2, 3)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3) }, "initial view")

	for pid, n := range c.nodes {
		n.mu.Lock()
		if len(n.installs) == 0 {
			n.mu.Unlock()
			t.Fatalf("p%d recorded no installs", pid)
		}
		last := n.installs[len(n.installs)-1]
		n.mu.Unlock()
		v := n.lastView()
		for _, m := range v.Members {
			if _, ok := last[m]; !ok {
				t.Errorf("p%d: install for %v missing state from %v", pid, v.ID, m)
			}
		}
	}
}

func TestSequentialJoins(t *testing.T) {
	c := newCluster(t, 1)
	waitFor(t, 2*time.Second, func() bool { return c.converged(1) }, "singleton view")

	world := []ids.ProcessID{1, 2}
	c.addNode(t, 2, world)
	c.nodes[1].det.AddPeer(2)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2) }, "p2 joined")

	world = []ids.ProcessID{1, 2, 3}
	c.addNode(t, 3, world)
	c.nodes[1].det.AddPeer(3)
	c.nodes[2].det.AddPeer(3)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3) }, "p3 joined")
}

func TestNonTransitiveStillInstallsSomething(t *testing.T) {
	// a–b cut but both reach c: the membership must still make progress
	// (the paper notes such scenarios only occur in WANs and can produce
	// differing views; we require only that nodes do not wedge and that
	// every installed view includes the installer).
	c := newCluster(t, 1, 2, 3)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3) }, "initial view")

	c.net.SetConnected(ids.ProcessEndpoint(1), ids.ProcessEndpoint(2), false)
	time.Sleep(500 * time.Millisecond)
	for pid, n := range c.nodes {
		v := n.lastView()
		if !v.Contains(pid) {
			t.Errorf("p%d wedged in a view excluding itself: %v", pid, v)
		}
	}
	c.net.Heal()
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2, 3) }, "recovered after heal")
}

func TestStopIsIdempotentAndTerminates(t *testing.T) {
	c := newCluster(t, 1, 2)
	waitFor(t, 5*time.Second, func() bool { return c.converged(1, 2) }, "initial view")
	n := c.nodes[1]
	n.svc.Stop()
	n.svc.Stop() // second stop must not hang or panic
}

func TestHandleUnknownMessageIgnored(t *testing.T) {
	c := newCluster(t, 1)
	c.nodes[1].svc.Handle(9, fd.Heartbeat{}) // not a membership message
	waitFor(t, 2*time.Second, func() bool { return c.converged(1) }, "still healthy")
}

func TestManyNodesConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("slow convergence test")
	}
	var pids []ids.ProcessID
	for i := 1; i <= 8; i++ {
		pids = append(pids, ids.ProcessID(i))
	}
	c := newCluster(t, pids...)
	waitFor(t, 10*time.Second, func() bool { return c.converged(pids...) },
		fmt.Sprintf("%d nodes converge", len(pids)))
}
