// Package membership implements a partitionable, process-level membership
// service: the bottom half of the GCS the paper assumes.
//
// The protocol is coordinator-driven view agreement. Each process tracks a
// reachable set through a failure detector. Whenever the reachable set
// disagrees with the current view, the least reachable process proposes a
// new view (epoch-numbered so concurrent proposals are totally ordered);
// members accept the highest proposal they have seen and return an opaque
// synchronization blob collected from the layer above (virtual synchrony's
// flush); when every proposed member accepted, the coordinator commits the
// view together with all blobs, and each member hands the blobs to the
// layer above before exposing the view. Rounds that lose members retry
// with a higher epoch and a recomputed member set.
//
// Guarantees (matching the paper's GCS requirements, see Vitenberg et al.):
//
//   - self-inclusion: every installed view contains the installer;
//   - monotonicity: views install in strictly increasing ID order at each
//     process;
//   - partitionability: disjoint components install disjoint views;
//   - precision in stable runs: once the failure detector is accurate and
//     quiescent, all processes in a component install the same final view
//     whose membership is exactly the component;
//   - flush hook: members that move together from view V to view W were
//     handed the same state blobs, which is what the layer above needs to
//     deliver the same message set in V (virtual synchrony).
//
// Round deadlines and nudge rate limits derive solely from the injected
// clock.Clock, so a simulated clock (possibly skewed per node) fully
// controls the protocol's notion of elapsed time.
//
//hafw:simclock
package membership

import (
	"sort"
	"sync"
	"time"

	"hafw/internal/clock"
	"hafw/internal/fd"
	"hafw/internal/ids"
	"hafw/internal/wire"
)

// Propose asks the recipients to join a new view.
type Propose struct {
	// VID is the proposed view identifier.
	VID ids.ViewID
	// Members is the proposed member set (sorted).
	Members []ids.ProcessID
}

// WireName implements wire.Message.
func (Propose) WireName() string { return "membership.Propose" }

// Accept is a member's agreement to a proposal, carrying its flush state.
type Accept struct {
	// VID echoes the accepted proposal.
	VID ids.ViewID
	// State is the opaque synchronization blob from Hooks.Collect.
	State []byte
}

// WireName implements wire.Message.
func (Accept) WireName() string { return "membership.Accept" }

// Nudge tells the coordinator of one's reachable set that the sender's
// installed view disagrees with it. A member can miss a Commit (its
// process was isolated exactly when the message flew); without repair, the
// coordinator would sit in steady state forever while the member starves.
// On receipt, a coordinator whose own view looks fine re-runs a round.
type Nudge struct {
	// VID is the sender's current view.
	VID ids.ViewID
}

// WireName implements wire.Message.
func (Nudge) WireName() string { return "membership.Nudge" }

// Commit installs an agreed view, carrying every member's flush state.
type Commit struct {
	// VID is the committed view identifier.
	VID ids.ViewID
	// Members is the final member set.
	Members []ids.ProcessID
	// States maps each member to the blob it sent in its Accept.
	States map[ids.ProcessID][]byte
}

// WireName implements wire.Message.
func (Commit) WireName() string { return "membership.Commit" }

func init() {
	wire.Register(Propose{})
	wire.Register(Accept{})
	wire.Register(Commit{})
	wire.Register(Nudge{})
}

// Hooks is how the layer above (virtual synchrony) participates in view
// changes. All hooks are invoked from the membership goroutine, never
// concurrently with each other.
type Hooks interface {
	// Block is called when this process accepts a proposal. The layer
	// above must stop initiating new multicasts until the next Install.
	// Block may be called repeatedly (retried rounds) without an
	// intervening Install.
	Block()
	// Collect returns the synchronization state for the dying view. It may
	// be called repeatedly; each call should reflect the latest state.
	Collect() []byte
	// Install delivers the agreed view together with every member's
	// collected state. The layer above must complete its flush (deliver
	// the union of messages) before exposing the view to applications, and
	// then resume multicasting.
	Install(v View, states map[ids.ProcessID][]byte)
}

// NopHooks is a Hooks that does nothing except optionally observe views;
// useful for tests of the membership layer alone.
type NopHooks struct {
	// OnInstall, if non-nil, observes installed views.
	OnInstall func(v View, states map[ids.ProcessID][]byte)
}

// Block implements Hooks.
func (NopHooks) Block() {}

// Collect implements Hooks.
func (NopHooks) Collect() []byte { return nil }

// Install implements Hooks.
func (h NopHooks) Install(v View, states map[ids.ProcessID][]byte) {
	if h.OnInstall != nil {
		h.OnInstall(v, states)
	}
}

// Sender is the outbound transport dependency.
type Sender interface {
	Send(to ids.EndpointID, m wire.Message) error
}

// Config parameterizes a membership Service.
type Config struct {
	// Self is the local process.
	Self ids.ProcessID
	// Send transmits protocol messages.
	Send Sender
	// Hooks receives flush callbacks. Nil means NopHooks{}.
	Hooks Hooks
	// Detector supplies the reachable set. The owner must route inbound
	// traffic to Detector.Observe and forward its OnChange to
	// Service.ReachableChanged.
	Detector *fd.Detector
	// RoundTimeout bounds one propose/accept round before the coordinator
	// retries with a fresh membership estimate. Zero means 150ms.
	RoundTimeout time.Duration
	// OnView, if set, observes every installed view after Hooks.Install
	// returned. Called from the membership goroutine.
	OnView func(v View)
	// Clock is the time source for round deadlines and the retry ticker.
	// Nil means the wall clock.
	Clock clock.Clock
}

// Service runs the membership protocol for one process.
type Service struct {
	cfg   Config
	hooks Hooks
	clk   clock.Clock

	mu sync.Mutex
	// curView is the currently installed view.
	curView View
	// maxEpoch is the highest epoch seen in any proposal or commit.
	maxEpoch uint64
	// accepted is the highest proposal this process has accepted.
	accepted ids.ViewID
	// round is the coordinator-side state of an in-progress round, nil if
	// this process is not currently coordinating.
	round *roundState
	// reachable is the latest failure-detector estimate (sorted, includes
	// self).
	reachable []ids.ProcessID
	// lastNudge rate-limits disagreement nudges to the coordinator.
	lastNudge time.Time
	// nudged is set when a member reports view disagreement; it forces a
	// round even though the local view matches the reachable set.
	nudged  bool
	stopped bool

	wake  chan struct{}
	inbox chan inboundMsg
	stop  chan struct{}
	done  chan struct{}
}

// inboundMsg is one queued protocol message awaiting the loop goroutine.
type inboundMsg struct {
	from ids.ProcessID
	msg  wire.Message
}

// roundState tracks one coordinator round.
type roundState struct {
	vid      ids.ViewID
	members  []ids.ProcessID
	states   map[ids.ProcessID][]byte
	deadline time.Time
}

// New creates the service. The initial view is the singleton {Self} with
// ID (1, Self); it is installed silently (no hook calls) since there is
// nothing to flush.
func New(cfg Config) *Service {
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = 150 * time.Millisecond
	}
	hooks := cfg.Hooks
	if hooks == nil {
		hooks = NopHooks{}
	}
	s := &Service{
		cfg:       cfg,
		hooks:     hooks,
		clk:       clock.OrReal(cfg.Clock),
		curView:   NewView(ids.ViewID{Epoch: 1, Coord: cfg.Self}, []ids.ProcessID{cfg.Self}),
		maxEpoch:  1,
		reachable: []ids.ProcessID{cfg.Self},
		wake:      make(chan struct{}, 1),
		inbox:     make(chan inboundMsg, 1024),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	return s
}

// Start launches the protocol goroutine.
func (s *Service) Start() { go s.loop() }

// Stop terminates the protocol goroutine.
func (s *Service) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
}

// View returns the currently installed view.
func (s *Service) View() View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curView
}

// ReachableChanged feeds a new failure-detector estimate. Wire it to
// fd.Config.OnChange.
func (s *Service) ReachableChanged(reachable []ids.ProcessID) {
	s.mu.Lock()
	s.reachable = append([]ids.ProcessID(nil), reachable...)
	s.mu.Unlock()
	s.kick()
}

// Handle enqueues one inbound membership message for the protocol
// goroutine. The owner routes envelopes whose payload is a membership type
// here. If the queue is full the message is dropped; the protocol's
// retry machinery recovers.
func (s *Service) Handle(from ids.ProcessID, m wire.Message) {
	select {
	case s.inbox <- inboundMsg{from: from, msg: m}:
	default:
	}
}

// dispatch runs one inbound message on the protocol goroutine.
func (s *Service) dispatch(in inboundMsg) {
	switch msg := in.msg.(type) {
	case Propose:
		s.handlePropose(in.from, msg)
	case Accept:
		s.handleAccept(in.from, msg)
	case Commit:
		s.handleCommit(msg)
	case Nudge:
		s.mu.Lock()
		if msg.VID != s.curView.ID {
			s.nudged = true
		}
		s.mu.Unlock()
	}
}

// kick nudges the protocol loop.
func (s *Service) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *Service) loop() {
	defer close(s.done)
	ticker := s.clk.NewTicker(s.cfg.RoundTimeout / 3)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case in := <-s.inbox:
			s.dispatch(in)
		case <-s.wake:
		case <-ticker.C():
		}
		s.step()
	}
}

// step decides whether to start or retry a coordinator round.
func (s *Service) step() {
	s.mu.Lock()
	reach := append([]ids.ProcessID(nil), s.reachable...)
	cur := s.curView
	round := s.round
	nudged := s.nudged
	s.nudged = false
	now := s.clk.Now()
	s.mu.Unlock()

	iAmCoord := len(reach) > 0 && reach[0] == s.cfg.Self
	viewMatches := sameSet(cur.Members, reach)

	if !iAmCoord {
		// Not the coordinator of our component: abandon any stale round
		// and wait for the real coordinator — but if our view disagrees
		// with what we can reach, tell the coordinator: it may have missed
		// nothing itself (we missed its Commit) and would otherwise idle
		// forever.
		if round != nil {
			s.mu.Lock()
			s.round = nil
			s.mu.Unlock()
		}
		if !viewMatches {
			s.mu.Lock()
			due := now.Sub(s.lastNudge) >= s.cfg.RoundTimeout
			if due {
				s.lastNudge = now
			}
			s.mu.Unlock()
			if due {
				_ = s.cfg.Send.Send(ids.ProcessEndpoint(reach[0]), Nudge{VID: cur.ID})
			}
		}
		return
	}
	if viewMatches && round == nil && !nudged {
		return // steady state
	}
	// Either the view disagrees with the reachable set, or a round is in
	// flight. A started round is always driven to a commit — even if the
	// failure-detector estimate reverts to the current membership —
	// because remote members may have accepted (and blocked multicasts)
	// and only a commit unblocks them.
	if round != nil && sameSet(round.members, reach) && now.Before(round.deadline) {
		return // round in flight and still plausible
	}
	s.startRound(reach)
}

// startRound begins a coordinator round proposing the given member set.
func (s *Service) startRound(members []ids.ProcessID) {
	s.mu.Lock()
	s.maxEpoch++
	vid := ids.ViewID{Epoch: s.maxEpoch, Coord: s.cfg.Self}
	s.round = &roundState{
		vid:      vid,
		members:  append([]ids.ProcessID(nil), members...),
		states:   make(map[ids.ProcessID][]byte, len(members)),
		deadline: s.clk.Now().Add(s.cfg.RoundTimeout),
	}
	s.mu.Unlock()

	prop := Propose{VID: vid, Members: members}
	for _, m := range members {
		if m == s.cfg.Self {
			continue
		}
		_ = s.cfg.Send.Send(ids.ProcessEndpoint(m), prop)
	}
	// Local accept.
	s.handlePropose(s.cfg.Self, prop)
}

func (s *Service) handlePropose(from ids.ProcessID, p Propose) {
	s.mu.Lock()
	if s.maxEpoch < p.VID.Epoch {
		s.maxEpoch = p.VID.Epoch
	}
	// Accept only proposals newer than both the installed view and any
	// previously accepted proposal, and only if we are included.
	if !p.VID.After(s.curView.ID) || (!s.accepted.IsZero() && !p.VID.After(s.accepted)) {
		s.mu.Unlock()
		return
	}
	included := false
	for _, m := range p.Members {
		if m == s.cfg.Self {
			included = true
			break
		}
	}
	if !included {
		s.mu.Unlock()
		return
	}
	s.accepted = p.VID
	s.mu.Unlock()

	// Block new multicasts and collect flush state for the dying view.
	s.hooks.Block()
	state := s.hooks.Collect()

	if from == s.cfg.Self {
		s.recordAccept(s.cfg.Self, Accept{VID: p.VID, State: state})
		return
	}
	_ = s.cfg.Send.Send(ids.ProcessEndpoint(from), Accept{VID: p.VID, State: state})
}

func (s *Service) handleAccept(from ids.ProcessID, a Accept) {
	s.recordAccept(from, a)
}

// recordAccept books an accept into the coordinator round and commits when
// complete.
func (s *Service) recordAccept(from ids.ProcessID, a Accept) {
	s.mu.Lock()
	round := s.round
	if round == nil || round.vid != a.VID {
		s.mu.Unlock()
		return
	}
	round.states[from] = a.State
	complete := true
	for _, m := range round.members {
		if _, ok := round.states[m]; !ok {
			complete = false
			break
		}
	}
	if !complete {
		s.mu.Unlock()
		return
	}
	commit := Commit{VID: round.vid, Members: round.members, States: round.states}
	s.round = nil
	s.mu.Unlock()

	for _, m := range commit.Members {
		if m == s.cfg.Self {
			continue
		}
		_ = s.cfg.Send.Send(ids.ProcessEndpoint(m), commit)
	}
	s.handleCommit(commit)
}

func (s *Service) handleCommit(c Commit) {
	s.mu.Lock()
	if s.maxEpoch < c.VID.Epoch {
		s.maxEpoch = c.VID.Epoch
	}
	if !c.VID.After(s.curView.ID) {
		s.mu.Unlock()
		return
	}
	v := NewView(c.VID, c.Members)
	if !v.Contains(s.cfg.Self) {
		s.mu.Unlock()
		return
	}
	s.curView = v
	s.mu.Unlock()

	states := make(map[ids.ProcessID][]byte, len(c.States))
	for p, b := range c.States {
		states[p] = b
	}
	s.hooks.Install(v, states)
	if s.cfg.OnView != nil {
		s.cfg.OnView(v)
	}
	s.kick()
}

// sameSet reports whether two sorted process slices hold the same set.
func sameSet(a, b []ids.ProcessID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortProcesses sorts a process slice in place and returns it; exported
// for layers that must canonicalize member lists the same way this package
// does.
func SortProcesses(ps []ids.ProcessID) []ids.ProcessID {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}
