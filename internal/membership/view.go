package membership

import (
	"fmt"
	"sort"

	"hafw/internal/ids"
)

// View is one installed membership view: an identifier plus the sorted set
// of member processes. Views at a single process are installed in strictly
// increasing ID order; concurrent partitions install views with
// incomparable member sets but globally comparable IDs.
type View struct {
	// ID identifies the view; see ids.ViewID for the ordering.
	ID ids.ViewID
	// Members is the sorted member set. It always contains the local
	// process at the process that installed the view.
	Members []ids.ProcessID
}

// NewView builds a view with a defensively copied, sorted, deduplicated
// member set.
func NewView(id ids.ViewID, members []ids.ProcessID) View {
	ms := normalizeMembers(members)
	return View{ID: id, Members: ms}
}

func normalizeMembers(members []ids.ProcessID) []ids.ProcessID {
	ms := make([]ids.ProcessID, 0, len(members))
	seen := make(map[ids.ProcessID]bool, len(members))
	for _, m := range members {
		if m == ids.Nil || seen[m] {
			continue
		}
		seen[m] = true
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return ms
}

// Contains reports whether p is a member of v.
func (v View) Contains(p ids.ProcessID) bool {
	i := sort.Search(len(v.Members), func(i int) bool { return v.Members[i] >= p })
	return i < len(v.Members) && v.Members[i] == p
}

// Coordinator returns the least member, which every protocol layer treats
// as the view's coordinator, or ids.Nil for an empty view.
func (v View) Coordinator() ids.ProcessID {
	if len(v.Members) == 0 {
		return ids.Nil
	}
	return v.Members[0]
}

// SameMembers reports whether v and w have identical member sets
// (regardless of ID).
func (v View) SameMembers(w View) bool {
	if len(v.Members) != len(w.Members) {
		return false
	}
	for i := range v.Members {
		if v.Members[i] != w.Members[i] {
			return false
		}
	}
	return true
}

// Intersect returns the sorted processes present in both v's members and
// the given set. Virtual synchrony obligations hold exactly for these
// "survivors" of a view change.
func (v View) Intersect(other []ids.ProcessID) []ids.ProcessID {
	in := make(map[ids.ProcessID]bool, len(other))
	for _, p := range other {
		in[p] = true
	}
	var out []ids.ProcessID
	for _, m := range v.Members {
		if in[m] {
			out = append(out, m)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (v View) String() string {
	return fmt.Sprintf("View(%s %v)", v.ID, v.Members)
}
