package membership

import (
	"reflect"
	"testing"
	"testing/quick"

	"hafw/internal/ids"
)

func TestNewViewNormalizes(t *testing.T) {
	v := NewView(ids.ViewID{Epoch: 1, Coord: 1}, []ids.ProcessID{3, 1, 2, 1, ids.Nil})
	want := []ids.ProcessID{1, 2, 3}
	if !reflect.DeepEqual(v.Members, want) {
		t.Errorf("Members = %v, want %v", v.Members, want)
	}
}

func TestViewContains(t *testing.T) {
	v := NewView(ids.ViewID{Epoch: 1, Coord: 1}, []ids.ProcessID{2, 4, 6})
	for _, p := range []ids.ProcessID{2, 4, 6} {
		if !v.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range []ids.ProcessID{1, 3, 5, 7} {
		if v.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestViewCoordinator(t *testing.T) {
	v := NewView(ids.ViewID{Epoch: 1, Coord: 9}, []ids.ProcessID{5, 3, 8})
	if got := v.Coordinator(); got != 3 {
		t.Errorf("Coordinator() = %v, want 3", got)
	}
	empty := NewView(ids.ViewID{}, nil)
	if got := empty.Coordinator(); got != ids.Nil {
		t.Errorf("empty Coordinator() = %v, want Nil", got)
	}
}

func TestViewSameMembers(t *testing.T) {
	a := NewView(ids.ViewID{Epoch: 1, Coord: 1}, []ids.ProcessID{1, 2})
	b := NewView(ids.ViewID{Epoch: 9, Coord: 2}, []ids.ProcessID{2, 1})
	c := NewView(ids.ViewID{Epoch: 1, Coord: 1}, []ids.ProcessID{1, 2, 3})
	if !a.SameMembers(b) {
		t.Error("a and b should have the same members")
	}
	if a.SameMembers(c) {
		t.Error("a and c should differ")
	}
}

func TestViewIntersect(t *testing.T) {
	v := NewView(ids.ViewID{Epoch: 1, Coord: 1}, []ids.ProcessID{1, 2, 3, 4})
	got := v.Intersect([]ids.ProcessID{2, 4, 9})
	if !reflect.DeepEqual(got, []ids.ProcessID{2, 4}) {
		t.Errorf("Intersect = %v, want [2 4]", got)
	}
	if got := v.Intersect(nil); got != nil {
		t.Errorf("Intersect(nil) = %v, want nil", got)
	}
}

// TestNormalizeProperty checks that normalization is idempotent, sorted,
// and duplicate-free for arbitrary inputs.
func TestNormalizeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		in := make([]ids.ProcessID, len(raw))
		for i, r := range raw {
			in[i] = ids.ProcessID(r % 16)
		}
		out := normalizeMembers(in)
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				return false // must be strictly increasing
			}
		}
		// Idempotent.
		again := normalizeMembers(out)
		return reflect.DeepEqual(out, again)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortProcesses(t *testing.T) {
	got := SortProcesses([]ids.ProcessID{3, 1, 2})
	if !reflect.DeepEqual(got, []ids.ProcessID{1, 2, 3}) {
		t.Errorf("SortProcesses = %v", got)
	}
}
