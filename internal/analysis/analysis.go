// Package analysis is a self-contained, dependency-free re-implementation
// of the golang.org/x/tools/go/analysis API surface that this repository's
// static checkers need. The framework's determinism, locking, and wire
// invariants (DESIGN.md "Static analysis") are machine-checked by passes
// built on this package and driven by cmd/halint, either standalone or as
// a `go vet -vettool` unit checker.
//
// The subset implemented here is deliberately small: analyzers, passes,
// diagnostics with suggested fixes, and object facts (the mechanism that
// makes the determinism pass interprocedural across package boundaries).
// It exists because the build environment bakes in only the Go toolchain;
// pulling golang.org/x/tools is not an option, and the invariants matter
// more than the vendor.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer; it is used in diagnostics, in
	// `//nolint:hafw/<name>` suppression comments, and as the fact-table
	// key.
	Name string
	// Doc is the one-paragraph description shown by `halint -help`.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
	// FactTypes lists the fact prototypes the analyzer exports; each must
	// be a pointer to a gob-encodable struct. Registering a fact type
	// makes the analyzer's results visible to later packages that import
	// the analyzed one.
	FactTypes []Fact
}

// Fact is an observation about a program object that survives across
// package boundaries (and, in unitchecker mode, across processes via .vetx
// files). Implementations must be pointers to gob-encodable structs.
type Fact interface {
	AFact()
}

// TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// SuggestedFix is one mechanical rewrite that resolves a diagnostic;
// `halint -fix` applies them.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// Pass carries one analyzer's view of one package. The driver populates
// every field; analyzers must treat them as read-only.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver (which applies nolint
	// suppression before surfacing it).
	Report func(Diagnostic)

	// ImportObjectFact copies the fact of the given type previously
	// exported for obj (by this analyzer, possibly while analyzing a
	// dependency package) into fact, reporting whether one existed.
	ImportObjectFact func(obj types.Object, fact Fact) bool
	// ExportObjectFact records a fact for obj, visible to this analyzer
	// when it later runs on packages that import this one. obj must
	// belong to the package under analysis and be addressable by
	// ObjectKey.
	ExportObjectFact func(obj types.Object, fact Fact)
	// ImportPackageFact copies the whole-package fact previously exported
	// by this analyzer for pkg (the package under analysis or one of its
	// dependencies) into fact, reporting whether one existed. Package
	// facts are how analyzers accumulate program-wide structures — the
	// lockorder pass folds each dependency's lock-acquisition graph into
	// its own this way.
	ImportPackageFact func(pkg *types.Package, fact Fact) bool
	// ExportPackageFact records a fact for the package under analysis,
	// visible to this analyzer when it later runs on importing packages.
	ExportPackageFact func(fact Fact)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PackageFactKey is the reserved fact-table key under which a package's
// whole-package fact is stored. The NUL prefix keeps it outside the
// ObjectKey namespace (Go identifiers cannot contain NUL).
const PackageFactKey = "\x00package"

// ObjectKey returns a stable, per-package identifier for a fact-bearing
// object, or "" if the object cannot carry facts. Package-level functions
// and variables map to their name; methods map to "(RecvType).Name". The
// key space mirrors what the analyzers need (functions, mostly) rather
// than the full generality of x/tools' objectpath.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			return "(" + named.Obj().Name() + ")." + fn.Name()
		}
		if fn.Parent() == fn.Pkg().Scope() {
			return fn.Name()
		}
		return "" // local closure object: not addressable
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name()
	}
	return ""
}
