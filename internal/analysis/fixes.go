package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix attached to the findings and
// returns the rewritten file contents, keyed by file name. Files without
// edits are absent from the result. Edits within a file are applied
// back-to-front so earlier offsets stay valid; overlapping edits are an
// error (the caller should re-run analysis after applying one round).
func ApplyFixes(fset *token.FileSet, findings []Finding) (map[string][]byte, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := make(map[string][]edit)
	for _, f := range findings {
		for _, fix := range f.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := fset.Position(te.Pos)
				end := start
				if te.End.IsValid() {
					end = fset.Position(te.End)
				}
				if end.Filename != start.Filename {
					return nil, fmt.Errorf("fix %q spans files", fix.Message)
				}
				perFile[start.Filename] = append(perFile[start.Filename],
					edit{start: start.Offset, end: end.Offset, text: te.NewText})
			}
		}
	}
	out := make(map[string][]byte, len(perFile))
	for name, edits := range perFile {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i, e := range edits {
			if i > 0 && e.end > edits[i-1].start {
				return nil, fmt.Errorf("%s: overlapping suggested fixes; apply and re-run", name)
			}
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				return nil, fmt.Errorf("%s: suggested fix out of range", name)
			}
			src = append(src[:e.start], append(append([]byte(nil), e.text...), src[e.end:]...)...)
		}
		out[name] = src
	}
	return out, nil
}
