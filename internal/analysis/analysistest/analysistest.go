// Package analysistest runs an analyzer over GOPATH-style test packages
// under a testdata/src directory and checks its diagnostics against
// `// want "regexp"` comments in the sources, mirroring
// golang.org/x/tools/go/analysis/analysistest. Test packages may import
// each other (facts flow between them) and the standard library (resolved
// from compiler export data via `go list -export`, so no network is
// needed).
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hafw/internal/analysis"
	"hafw/internal/analysis/load"
)

// TestData returns the callers' testdata directory as an absolute path.
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return abs
}

// Run analyzes the packages named by patterns (paths under
// testdata/src) and compares diagnostics against `// want` comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	run(t, testdata, a, patterns, false)
}

// RunWithSuggestedFixes is Run plus fix verification: all suggested fixes
// are applied and the result of each changed file is compared against a
// sibling <file>.golden.
func RunWithSuggestedFixes(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	run(t, testdata, a, patterns, true)
}

type testPkg struct {
	path     string
	dir      string
	files    []string // absolute paths, sorted
	imports  []string
	pkg      *load.Package
	facts    analysis.PackageFacts
	findings []analysis.Finding
	analyzed bool
}

func run(t *testing.T, testdata string, a *analysis.Analyzer, patterns []string, checkFixes bool) {
	t.Helper()
	if len(patterns) == 0 {
		t.Fatal("analysistest: no packages to analyze")
	}
	fset := token.NewFileSet()
	pkgs := make(map[string]*testPkg)
	stdlib := make(map[string]bool)
	for _, p := range patterns {
		discover(t, testdata, p, pkgs, stdlib)
	}

	imp := load.NewImporter(fset, stdlibExports(t, stdlib))
	for _, p := range patterns {
		check(t, fset, imp, pkgs, p)
	}
	for _, p := range patterns {
		analyze(t, fset, a, pkgs, p)
	}

	for _, p := range patterns {
		tp := pkgs[p]
		checkWants(t, fset, tp)
		if checkFixes {
			checkGolden(t, fset, tp)
		}
	}
}

// discover parses the package's imports and recursively registers every
// testdata-local package; imports with no testdata directory are assumed
// to be standard library.
func discover(t *testing.T, testdata, path string, pkgs map[string]*testPkg, stdlib map[string]bool) {
	t.Helper()
	if _, ok := pkgs[path]; ok {
		return
	}
	dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: package %s: %v", path, err)
	}
	tp := &testPkg{path: path, dir: dir}
	pkgs[path] = tp
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		tp.files = append(tp.files, filepath.Join(dir, e.Name()))
	}
	sort.Strings(tp.files)
	if len(tp.files) == 0 {
		t.Fatalf("analysistest: package %s has no Go files", path)
	}
	seen := make(map[string]bool)
	for _, file := range tp.files {
		f, err := parser.ParseFile(token.NewFileSet(), file, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		for _, spec := range f.Imports {
			ipath, _ := strconv.Unquote(spec.Path.Value)
			if seen[ipath] {
				continue
			}
			seen[ipath] = true
			if _, err := os.Stat(filepath.Join(testdata, "src", filepath.FromSlash(ipath))); err == nil {
				tp.imports = append(tp.imports, ipath)
				discover(t, testdata, ipath, pkgs, stdlib)
			} else {
				stdlib[ipath] = true
			}
		}
	}
	sort.Strings(tp.imports)
}

// stdlibExports lists the needed standard-library packages (plus their
// dependency closure) and returns the export-data file table.
func stdlibExports(t *testing.T, stdlib map[string]bool) map[string]string {
	t.Helper()
	exports := make(map[string]string)
	if len(stdlib) == 0 {
		return exports
	}
	var paths []string
	for p := range stdlib {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	listed, err := load.GoList(".", append([]string{"-deps", "-export"}, paths...)...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports
}

// check type-checks the package (dependencies first) and registers it
// with the importer.
func check(t *testing.T, fset *token.FileSet, imp *load.Importer, pkgs map[string]*testPkg, path string) {
	t.Helper()
	tp := pkgs[path]
	if tp.pkg != nil {
		return
	}
	for _, dep := range tp.imports {
		check(t, fset, imp, pkgs, dep)
	}
	pkg, err := load.CheckFiles(fset, path, tp.files, imp, "")
	if err != nil {
		t.Fatalf("analysistest: %s: %v", path, err)
	}
	for _, e := range pkg.Errors {
		t.Errorf("analysistest: %s: typecheck: %v", path, e)
	}
	if t.Failed() {
		t.FailNow()
	}
	tp.pkg = pkg
	imp.Provide(path, pkg.Types)
}

// analyze runs the analyzer over the package, after its testdata
// dependencies (whose facts it can then import).
func analyze(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, pkgs map[string]*testPkg, path string) {
	t.Helper()
	tp := pkgs[path]
	if tp.analyzed {
		return
	}
	tp.analyzed = true
	for _, dep := range tp.imports {
		analyze(t, fset, a, pkgs, dep)
	}
	deps := func(pkgPath string) analysis.PackageFacts {
		if d, ok := pkgs[pkgPath]; ok {
			return d.facts
		}
		return nil
	}
	facts, findings, err := analysis.RunAnalyzers(tp.pkg.Loaded(fset), []*analysis.Analyzer{a}, deps)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	tp.facts = facts
	tp.findings = findings
}

// A want is one expected-diagnostic regexp at a file line.
type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkWants compares the package's findings against its `// want`
// comments, failing the test on any mismatch in either direction.
func checkWants(t *testing.T, fset *token.FileSet, tp *testPkg) {
	t.Helper()
	wants := make(map[string][]*want) // "file:line" → expectations
	for _, file := range tp.pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, lit := range splitLiterals(t, c.Text, m[1]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("analysistest: %s: bad want regexp %q: %v", key, lit, err)
					}
					wants[key] = append(wants[key], &want{re: re, raw: lit})
				}
			}
		}
	}

	for _, f := range tp.findings {
		pos := fset.Position(f.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, f.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.raw)
			}
		}
	}
}

// splitLiterals parses the space-separated Go string literals after
// `want`.
func splitLiterals(t *testing.T, comment, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			t.Fatalf("analysistest: malformed want comment %q", comment)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("analysistest: unterminated literal in want comment %q", comment)
		}
		lit, err := strconv.Unquote(s[:end+2])
		if err != nil {
			t.Fatalf("analysistest: bad literal in want comment %q: %v", comment, err)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

// checkGolden applies the findings' suggested fixes and compares each
// changed file with its .golden sibling.
func checkGolden(t *testing.T, fset *token.FileSet, tp *testPkg) {
	t.Helper()
	fixed, err := analysis.ApplyFixes(fset, tp.findings)
	if err != nil {
		t.Fatalf("analysistest: applying fixes: %v", err)
	}
	for _, file := range tp.files {
		goldenFile := file + ".golden"
		golden, err := os.ReadFile(goldenFile)
		if os.IsNotExist(err) {
			if _, changed := fixed[file]; changed {
				t.Errorf("analysistest: fixes modify %s but no .golden file exists", file)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got, ok := fixed[file]
		if !ok {
			got, err = os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
		}
		if string(got) != string(golden) {
			t.Errorf("analysistest: fix output for %s does not match %s:\n--- got ---\n%s\n--- want ---\n%s",
				file, goldenFile, got, golden)
		}
	}
}
