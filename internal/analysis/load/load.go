// Package load turns `go list` package patterns into type-checked syntax
// trees for analysis. Packages of the current module are parsed and
// type-checked from source (analyzers need their ASTs); everything else —
// the standard library, chiefly — is imported from compiler export data
// that `go list -export` materializes in the build cache. This mirrors
// what golang.org/x/tools/go/packages does, without the dependency.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"hafw/internal/analysis"
)

// ListModule is the module stanza of `go list -json` output.
type ListModule struct {
	Path      string
	Dir       string
	GoVersion string
}

// ListError is the error stanza of `go list -e -json` output.
type ListError struct {
	Pos string
	Err string
}

// ListPackage is the subset of `go list -json` output the loader needs.
type ListPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	Goroot     bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Deps       []string
	Module     *ListModule
	Error      *ListError
	DepsOnly   bool `json:"-"` // not a root of the requested patterns
}

// GoList runs `go list -e -json <args>` in dir and decodes the package
// stream.
func GoList(dir string, args ...string) ([]*ListPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*ListPackage
	for {
		lp := new(ListPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// Package is one source-loaded, type-checked package.
type Package struct {
	List  *ListPackage
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errors holds type-check errors (the package is still returned with
	// whatever was resolved).
	Errors []error
}

// Loaded returns the package in the shape the checker consumes.
func (p *Package) Loaded(fset *token.FileSet) *analysis.LoadedPackage {
	return &analysis.LoadedPackage{Fset: fset, Files: p.Files, Pkg: p.Types, Info: p.Info}
}

// Importer resolves imports for source-checked packages: module packages
// come from the in-memory table (preserving object identity, which facts
// rely on), everything else from export data files.
type Importer struct {
	fset    *token.FileSet
	exports map[string]string // import path → export data file
	loaded  map[string]*types.Package
	gc      types.Importer
}

// NewImporter builds an importer over the given export-file table.
func NewImporter(fset *token.FileSet, exports map[string]string) *Importer {
	imp := &Importer{fset: fset, exports: exports, loaded: make(map[string]*types.Package)}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return imp
}

// Provide registers a source-checked package for subsequent imports.
func (imp *Importer) Provide(path string, pkg *types.Package) { imp.loaded[path] = pkg }

// Import implements types.Importer.
func (imp *Importer) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := imp.loaded[path]; ok {
		return p, nil
	}
	return imp.gc.Import(path)
}

// NewTypesInfo allocates a fully populated types.Info.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// CheckFiles parses and type-checks one package's files.
func CheckFiles(fset *token.FileSet, path string, fileNames []string, imp types.Importer, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	pkg := &Package{Info: NewTypesInfo()}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
		Error:     func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(path, fset, files, pkg.Info)
	if err != nil && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, err)
	}
	pkg.Files = files
	pkg.Types = tpkg
	return pkg, nil
}

// Load lists patterns (plus their dependency closure, with export data)
// and source-checks every package belonging to the current module, in
// dependency order. Returned packages whose ListPackage.DepsOnly is true
// were pulled in only as dependencies of the requested patterns.
func Load(dir string, patterns []string) ([]*Package, *token.FileSet, error) {
	args := append([]string{"-deps", "-export"}, patterns...)
	all, err := GoList(dir, args...)
	if err != nil {
		return nil, nil, err
	}
	roots, err := GoList(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	isRoot := make(map[string]bool, len(roots))
	for _, lp := range roots {
		isRoot[lp.ImportPath] = true
	}

	fset := token.NewFileSet()
	exports := make(map[string]string)
	for _, lp := range all {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	imp := NewImporter(fset, exports)

	var out []*Package
	for _, lp := range all { // -deps order: dependencies first
		if lp.Standard || lp.Module == nil {
			continue
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, nil, fmt.Errorf("%s: cgo packages are not supported by the loader", lp.ImportPath)
		}
		var names []string
		for _, f := range lp.GoFiles {
			names = append(names, filepath.Join(lp.Dir, f))
		}
		goVersion := ""
		if lp.Module.GoVersion != "" {
			goVersion = "go" + lp.Module.GoVersion
		}
		pkg, err := CheckFiles(fset, lp.ImportPath, names, imp, goVersion)
		if err != nil {
			return nil, nil, err
		}
		lp.DepsOnly = !isRoot[lp.ImportPath]
		pkg.List = lp
		imp.Provide(lp.ImportPath, pkg.Types)
		out = append(out, pkg)
	}
	return out, fset, nil
}
