package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LoadedPackage bundles the typed syntax of one package, however it was
// produced (source load, unitchecker config, or analysistest).
type LoadedPackage struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Finding is one diagnostic attributed to the analyzer that raised it.
type Finding struct {
	Analyzer string
	Diagnostic
}

// Position resolves the finding's position against fset.
func (f Finding) Position(fset *token.FileSet) token.Position {
	return fset.Position(f.Pos)
}

// RunAnalyzers executes the analyzers over one package, in order. Facts
// exported while analyzing this package land in the returned PackageFacts;
// facts of dependency packages are resolved through deps (which may be
// nil). Findings suppressed by a justified `//nolint:hafw/<analyzer>`
// comment are dropped; unjustified nolint directives become findings of
// the pseudo-analyzer "nolint".
func RunAnalyzers(lp *LoadedPackage, analyzers []*Analyzer, deps func(pkgPath string) PackageFacts) (PackageFacts, []Finding, error) {
	facts := make(PackageFacts)
	var findings []Finding
	for _, a := range analyzers {
		fa := &factAccess{analyzer: a.Name, selfPath: lp.Pkg.Path(), self: facts, deps: deps}
		pass := &Pass{
			Analyzer:  a,
			Fset:      lp.Fset,
			Files:     lp.Files,
			Pkg:       lp.Pkg,
			TypesInfo: lp.Info,
			Report: func(d Diagnostic) {
				findings = append(findings, Finding{Analyzer: a.Name, Diagnostic: d})
			},
			ImportObjectFact:  fa.importFact,
			ExportObjectFact:  fa.exportFact,
			ImportPackageFact: fa.importPackageFact,
			ExportPackageFact: fa.exportPackageFact,
		}
		if err := a.Run(pass); err != nil {
			return facts, findings, fmt.Errorf("analyzer %s on %s: %w", a.Name, lp.Pkg.Path(), err)
		}
	}
	findings = applyNolint(lp, findings)
	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return facts, findings, nil
}

// NolintPrefix is the namespace all suppression directives must use:
// `//nolint:hafw/<analyzer> // justification`.
const NolintPrefix = "hafw/"

var nolintRe = regexp.MustCompile(`^//\s*nolint:([a-zA-Z0-9_/,\- ]+?)(?:\s*//\s*(.*))?$`)

type nolintDirective struct {
	analyzers     []string
	justified     bool
	pos           token.Pos
	line          int
	ownLine       bool // comment is alone on its line: applies to next line
	unknownSyntax bool
}

// applyNolint filters findings through the file's nolint directives.
func applyNolint(lp *LoadedPackage, findings []Finding) []Finding {
	directives := collectNolint(lp)
	if len(directives) == 0 {
		return findings
	}
	// suppressed[line][analyzer]
	suppressed := make(map[int]map[string]bool)
	mark := func(line int, names []string) {
		m := suppressed[line]
		if m == nil {
			m = make(map[string]bool)
			suppressed[line] = m
		}
		for _, n := range names {
			m[n] = true
		}
	}
	var out []Finding
	for _, d := range directives {
		if !d.justified {
			out = append(out, Finding{Analyzer: "nolint", Diagnostic: Diagnostic{
				Pos:     d.pos,
				Message: "nolint directive requires a justification: use `//nolint:hafw/<analyzer> // why this is safe`",
			}})
			continue
		}
		mark(d.line, d.analyzers)
		if d.ownLine {
			mark(d.line+1, d.analyzers)
		}
	}
	for _, f := range findings {
		line := lp.Fset.Position(f.Pos).Line
		if m := suppressed[line]; m != nil && m[f.Analyzer] {
			continue
		}
		out = append(out, f)
	}
	return out
}

func collectNolint(lp *LoadedPackage) []nolintDirective {
	var out []nolintDirective
	for _, file := range lp.Files {
		tf := lp.Fset.File(file.Pos())
		if tf == nil {
			continue
		}
		// lineHasCode records lines containing non-comment tokens, to
		// distinguish trailing comments from standalone ones.
		lineHasCode := make(map[int]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, isComment := n.(*ast.Comment); isComment {
				return false
			}
			if _, isGroup := n.(*ast.CommentGroup); isGroup {
				return false
			}
			if _, isFile := n.(*ast.File); !isFile {
				lineHasCode[lp.Fset.Position(n.Pos()).Line] = true
			}
			return true
		})
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := nolintRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), "nolint:") {
						// malformed (e.g. bad characters): treat as
						// unjustified so it cannot silently suppress.
						out = append(out, nolintDirective{pos: c.Pos(), line: lp.Fset.Position(c.Pos()).Line})
					}
					continue
				}
				var names []string
				relevant := false
				for _, raw := range strings.Split(m[1], ",") {
					name := strings.TrimSpace(raw)
					if strings.HasPrefix(name, NolintPrefix) {
						names = append(names, strings.TrimPrefix(name, NolintPrefix))
						relevant = true
					}
				}
				if !relevant {
					continue // someone else's nolint (e.g. golangci); not ours to police
				}
				line := lp.Fset.Position(c.Pos()).Line
				out = append(out, nolintDirective{
					analyzers: names,
					justified: strings.TrimSpace(m[2]) != "",
					pos:       c.Pos(),
					line:      line,
					ownLine:   !lineHasCode[line],
				})
			}
		}
	}
	return out
}

// TypeErrorf is a helper for drivers to surface type-check failures in a
// uniform shape.
func TypeErrorf(fset *token.FileSet, pkg *types.Package, err error) string {
	return fmt.Sprintf("%s: typecheck: %v", pkg.Path(), err)
}
