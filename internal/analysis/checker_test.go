package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// flagBad reports a diagnostic at every call to a function named "bad".
var flagBad = &Analyzer{
	Name: "flagbad",
	Doc:  "test analyzer: flags calls to bad()",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
		return nil
	},
}

func check(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	lp := &LoadedPackage{Fset: fset, Files: []*ast.File{file}, Pkg: pkg, Info: info}
	_, findings, err := RunAnalyzers(lp, []*Analyzer{flagBad}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func messages(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Analyzer+": "+f.Message)
	}
	return out
}

func TestNolintJustifiedSuppresses(t *testing.T) {
	fs := check(t, `package p
func bad() {}
func f() {
	bad() //nolint:hafw/flagbad // reviewed: fixture call
}
`)
	if len(fs) != 0 {
		t.Fatalf("expected suppression, got %v", messages(fs))
	}
}

func TestNolintStandaloneAppliesToNextLine(t *testing.T) {
	fs := check(t, `package p
func bad() {}
func f() {
	//nolint:hafw/flagbad // reviewed: fixture call
	bad()
}
`)
	if len(fs) != 0 {
		t.Fatalf("expected suppression, got %v", messages(fs))
	}
}

func TestNolintUnjustifiedIsAFinding(t *testing.T) {
	fs := check(t, `package p
func bad() {}
func f() {
	bad() //nolint:hafw/flagbad
}
`)
	if len(fs) != 2 {
		t.Fatalf("expected the original finding plus the nolint finding, got %v", messages(fs))
	}
	var sawNolint, sawOriginal bool
	for _, f := range fs {
		switch f.Analyzer {
		case "nolint":
			sawNolint = true
			if !strings.Contains(f.Message, "requires a justification") {
				t.Errorf("nolint finding message = %q", f.Message)
			}
		case "flagbad":
			sawOriginal = true
		}
	}
	if !sawNolint || !sawOriginal {
		t.Fatalf("missing expected findings: %v", messages(fs))
	}
}

func TestNolintWrongAnalyzerDoesNotSuppress(t *testing.T) {
	fs := check(t, `package p
func bad() {}
func f() {
	bad() //nolint:hafw/other // justification present, analyzer mismatched
}
`)
	if len(fs) != 1 || fs[0].Analyzer != "flagbad" {
		t.Fatalf("expected only the original finding, got %v", messages(fs))
	}
}

func TestForeignNolintIgnored(t *testing.T) {
	fs := check(t, `package p
func bad() {}
func f() {
	bad() //nolint:errcheck
}
`)
	if len(fs) != 1 || fs[0].Analyzer != "flagbad" {
		t.Fatalf("foreign nolint must neither suppress nor be policed, got %v", messages(fs))
	}
}
