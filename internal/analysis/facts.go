package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
)

// PackageFacts is the serializable fact table of one analyzed package:
// analyzer name → object key → gob-encoded fact. The standalone driver
// keeps tables in memory; unitchecker mode round-trips them through .vetx
// files so `go vet` can propagate facts between per-package processes.
type PackageFacts map[string]map[string][]byte

// EncodeFact serializes a fact value for storage in a PackageFacts table.
func EncodeFact(fact Fact) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return nil, fmt.Errorf("analysis: encode fact %T: %w", fact, err)
	}
	return buf.Bytes(), nil
}

// DecodeFact deserializes table bytes into fact (a pointer to the concrete
// fact struct).
func DecodeFact(data []byte, fact Fact) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(fact); err != nil {
		return fmt.Errorf("analysis: decode fact %T: %w", fact, err)
	}
	return nil
}

// factAccess wires a Pass's fact methods to the current package's table
// plus a resolver for dependency packages' tables.
type factAccess struct {
	analyzer string
	selfPath string
	self     PackageFacts
	deps     func(pkgPath string) PackageFacts
}

func (fa *factAccess) importFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	var table PackageFacts
	if obj.Pkg().Path() == fa.selfPath {
		table = fa.self
	} else if fa.deps != nil {
		table = fa.deps(obj.Pkg().Path())
	}
	if table == nil {
		return false
	}
	data, ok := table[fa.analyzer][key]
	if !ok {
		return false
	}
	return DecodeFact(data, fact) == nil
}

func (fa *factAccess) importPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	var table PackageFacts
	if pkg.Path() == fa.selfPath {
		table = fa.self
	} else if fa.deps != nil {
		table = fa.deps(pkg.Path())
	}
	if table == nil {
		return false
	}
	data, ok := table[fa.analyzer][PackageFactKey]
	if !ok {
		return false
	}
	return DecodeFact(data, fact) == nil
}

func (fa *factAccess) exportPackageFact(fact Fact) {
	data, err := EncodeFact(fact)
	if err != nil {
		return
	}
	if fa.self[fa.analyzer] == nil {
		fa.self[fa.analyzer] = make(map[string][]byte)
	}
	fa.self[fa.analyzer][PackageFactKey] = data
}

func (fa *factAccess) exportFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != fa.selfPath {
		return
	}
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	data, err := EncodeFact(fact)
	if err != nil {
		return
	}
	if fa.self[fa.analyzer] == nil {
		fa.self[fa.analyzer] = make(map[string][]byte)
	}
	fa.self[fa.analyzer][key] = data
}
