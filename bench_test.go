// Package hafw's root benchmark suite regenerates every experiment of the
// reproduction (E1–E13, one benchmark each — see DESIGN.md §5 and
// EXPERIMENTS.md) and measures the substrate's micro-performance. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the same runners as cmd/haexp in quick
// mode and report headline numbers through b.ReportMetric; the absolute
// wall-clock of one iteration is the cost of the full scenario (cluster
// formation, fault injection, measurement), not a protocol figure.
package hafw

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"hafw/internal/exp"
	"hafw/internal/gcs"
	"hafw/internal/ids"
	"hafw/internal/riskmodel"
	"hafw/internal/store"
	"hafw/internal/transport/memnet"
	"hafw/internal/unitdb"
	"hafw/internal/wire"
)

// runExp executes one experiment runner b.N times, failing the benchmark
// if the experiment errors.
func runExp(b *testing.B, id string) exp.Table {
	b.Helper()
	r, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := r.Run(true)
		if err != nil {
			b.Fatalf("%s: %v\n%s", id, err, t)
		}
		last = t
	}
	return last
}

// cell parses a numeric table cell.
func cell(b *testing.B, t exp.Table, row, col int) float64 {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		b.Fatalf("table %s has no cell (%d,%d)", t.ID, row, col)
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkE1SinglePrimary(b *testing.B) {
	t := runExp(b, "E1")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "violations")
}

func BenchmarkE2ReplicationSweep(b *testing.B) {
	t := runExp(b, "E2")
	b.ReportMetric(cell(b, t, 0, 2), "fracdown_R1")
	b.ReportMetric(cell(b, t, 2, 2), "fracdown_R3")
}

func BenchmarkE3LostUpdate(b *testing.B) {
	t := runExp(b, "E3")
	b.ReportMetric(cell(b, t, 0, 3), "plost_B0")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "plost_B3")
}

func BenchmarkE4DuplicateWindow(b *testing.B) {
	t := runExp(b, "E4")
	b.ReportMetric(cell(b, t, 0, 2), "meandups_T0.1")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 2), "meandups_T1.0")
}

func BenchmarkE5Takeover(b *testing.B) {
	t := runExp(b, "E5")
	gap, err := time.ParseDuration(t.Rows[1][1])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(gap.Milliseconds()), "crashgap_ms")
}

func BenchmarkE6LoadSweep(b *testing.B) {
	t := runExp(b, "E6")
	b.ReportMetric(cell(b, t, 0, 2), "propmsgs_T0.1_B0")
}

func BenchmarkE7DualPrimary(b *testing.B) {
	t := runExp(b, "E7")
	b.ReportMetric(cell(b, t, 0, 2), "dualwin_transitive")
	b.ReportMetric(cell(b, t, 1, 2), "dualwin_nontransitive")
}

func BenchmarkE8Migration(b *testing.B) {
	t := runExp(b, "E8")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "updates_lost")
}

func BenchmarkE9MPEGPolicy(b *testing.B) {
	t := runExp(b, "E9")
	b.ReportMetric(cell(b, t, 2, 3), "mpeg_missing_I")
}

func BenchmarkE10RSM(b *testing.B) {
	t := runExp(b, "E10")
	if t.Rows[len(t.Rows)-1][3] != "true" {
		b.Fatalf("replicas inconsistent:\n%s", t)
	}
}

func BenchmarkE11VoDInstance(b *testing.B) {
	t := runExp(b, "E11")
	b.ReportMetric(cell(b, t, 0, 1), "dup_frames")
}

func BenchmarkE12AutoConfig(b *testing.B) {
	t := runExp(b, "E12")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 1), "chosen_B_tightest")
}

// BenchmarkE13RestartRecovery reruns the durable-restart experiment and
// reports the headline comparison: state-transfer bytes shipped to a warm
// (disk intact) versus cold (disk wiped) rejoiner.
func BenchmarkE13RestartRecovery(b *testing.B) {
	t := runExp(b, "E13")
	b.ReportMetric(cell(b, t, len(t.Rows)-2, 4), "warm_rejoin_bytes")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 4), "cold_rejoin_bytes")
}

// --- substrate micro-benchmarks ---

type benchMsg struct {
	N    int
	Data []byte
}

func (benchMsg) WireName() string { return "bench.msg" }

func init() {
	wire.Register(benchMsg{})
	wire.Register(benchDelta{})
}

// BenchmarkWireEncode measures the codec on a typical payload.
func BenchmarkWireEncode(b *testing.B) {
	env := wire.Envelope{
		From:    ids.ProcessEndpoint(1),
		To:      ids.ProcessEndpoint(2),
		Payload: benchMsg{N: 7, Data: make([]byte, 256)},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireRoundTrip measures encode+decode.
func BenchmarkWireRoundTrip(b *testing.B) {
	env := wire.Envelope{
		From:    ids.ProcessEndpoint(1),
		To:      ids.ProcessEndpoint(2),
		Payload: benchMsg{N: 7, Data: make([]byte, 256)},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := wire.Encode(env)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnitDBAllocate measures the deterministic allocation function
// on a database with 1000 sessions.
func BenchmarkUnitDBAllocate(b *testing.B) {
	db := unitdb.New("u")
	members := []ids.ProcessID{1, 2, 3, 4, 5}
	for i := 0; i < 1000; i++ {
		s := db.CreateSession(ids.ClientID(i))
		db.Allocate(s.ID, members, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := db.CreateSession(ids.ClientID(i))
		db.Allocate(s.ID, members, 2)
		db.Remove(s.ID)
	}
}

// BenchmarkUnitDBReallocate measures a full crash-only reallocation of
// 1000 sessions.
func BenchmarkUnitDBReallocate(b *testing.B) {
	db := unitdb.New("u")
	members := []ids.ProcessID{1, 2, 3, 4, 5}
	for i := 0; i < 1000; i++ {
		s := db.CreateSession(ids.ClientID(i))
		db.Allocate(s.ID, members, 1)
	}
	survivors := []ids.ProcessID{2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Reallocate(survivors, 1)
	}
}

// populateStore writes n sessions (3 records each: create, allocate, one
// context update with a 64-byte context) into a fresh store at dir.
func populateStore(b *testing.B, dir string, n int) {
	b.Helper()
	s, _, _, err := store.Open(store.Options{Dir: dir, Unit: "bench", Policy: store.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	ctx := make([]byte, 64)
	for i := 1; i <= n; i++ {
		sid := ids.SessionID(i)
		for _, r := range []store.Record{
			{Op: store.OpCreate, SID: sid, Client: ids.ClientID(1000 + i)},
			{Op: store.OpAlloc, SID: sid, Primary: 1, Backups: []ids.ProcessID{2}},
			{Op: store.OpCtx, SID: sid, Ctx: ctx, Stamp: 1},
		} {
			if err := s.Append(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWALAppend measures append throughput of the durable log with a
// typical context-update record, per fsync policy.
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []store.Policy{store.FsyncNever, store.FsyncInterval, store.FsyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			s, _, _, err := store.Open(store.Options{
				Dir: b.TempDir(), Unit: "bench", Policy: pol, Interval: 10 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := make([]byte, 256)
			b.SetBytes(int64(len(ctx)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := store.Record{
					Op: store.OpCtx, SID: ids.SessionID(i%512 + 1),
					Ctx: ctx, Stamp: uint64(i),
				}
				if err := s.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreRecover measures full WAL replay time as the database
// grows — the restart-availability cost a durable server pays before it
// can rejoin its groups.
func BenchmarkStoreRecover(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			populateStore(b, dir, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, _, err := store.Recover(dir, "bench")
				if err != nil {
					b.Fatal(err)
				}
				if db.Len() != n {
					b.Fatalf("recovered %d sessions, want %d", db.Len(), n)
				}
			}
		})
	}
}

// BenchmarkDeltaVsFullTransfer measures the encoded bytes a joiner is
// shipped under the delta exchange: a warm joiner (holding a copy that
// missed the last round of context updates on 10% of sessions — the shape
// of a brief restart) versus a cold one (empty database, full copy). The
// ratio is the payoff of the durable store.
func BenchmarkDeltaVsFullTransfer(b *testing.B) {
	const n, staleFrac = 1000, 10
	members := []ids.ProcessID{1, 2}
	build := func(staleTail bool) *unitdb.DB {
		db := unitdb.New("u")
		for i := 0; i < n; i++ {
			s := db.CreateSession(ids.ClientID(i))
			db.Allocate(s.ID, members, 1)
			stamp := uint64(2)
			if staleTail && i >= n-n/staleFrac {
				stamp = 1
			}
			db.UpdateContext(s.ID, make([]byte, 64), stamp)
		}
		return db
	}
	fresh := build(false)    // the up-to-date member
	stale := build(true)     // warm joiner: missed updates on the tail 10%
	empty := unitdb.New("u") // cold joiner
	transfer := func(joiner *unitdb.DB) int {
		offers := map[ids.ProcessID]unitdb.Offer{
			1: fresh.Offer(),
			2: joiner.Offer(),
		}
		snap := fresh.DeltaFor(1, offers)
		data, err := wire.Encode(wire.Envelope{
			From: ids.ProcessEndpoint(1), To: ids.ProcessEndpoint(2),
			Payload: benchDelta{Snap: snap},
		})
		if err != nil {
			b.Fatal(err)
		}
		return len(data)
	}
	var warmBytes, coldBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warmBytes = transfer(stale)
		coldBytes = transfer(empty)
	}
	b.StopTimer()
	b.ReportMetric(float64(warmBytes), "warm_bytes")
	b.ReportMetric(float64(coldBytes), "cold_bytes")
	if coldBytes <= warmBytes {
		b.Fatalf("delta exchange did not shrink transfer: warm=%d cold=%d", warmBytes, coldBytes)
	}
}

type benchDelta struct {
	Snap unitdb.Snapshot
}

func (benchDelta) WireName() string { return "bench.delta" }

// BenchmarkRiskMonteCarlo measures lost-update trials per second.
func BenchmarkRiskMonteCarlo(b *testing.B) {
	p := riskmodel.Params{MTTF: 120, T: 0.5, B: 1}
	b.ResetTimer()
	riskmodel.SimulateLostUpdates(p, 42, b.N)
}

// BenchmarkGCSMulticast measures end-to-end ordered multicast delivery
// through a live 3-process GCS on the in-memory network: one op is one
// message multicast by the coordinator and delivered at every member.
func BenchmarkGCSMulticast(b *testing.B) {
	net := memnet.New(memnet.Config{})
	defer net.Close()
	pids := []ids.ProcessID{1, 2, 3}

	var mu sync.Mutex
	delivered := make(map[ids.ProcessID]int)
	var procs []*gcs.Process
	for _, pid := range pids {
		pid := pid
		ep, err := net.Attach(ids.ProcessEndpoint(pid))
		if err != nil {
			b.Fatal(err)
		}
		p, err := gcs.NewProcess(gcs.Config{
			Self: pid, Transport: ep, World: pids,
			OnEvent: func(e gcs.Event) {
				if _, ok := e.(gcs.MessageEvent); ok {
					mu.Lock()
					delivered[pid]++
					mu.Unlock()
				}
			},
			// Patient failure detection: the benchmark injects no faults,
			// and a tight send loop on a small machine can starve
			// aggressive heartbeats into false suspicions — which would
			// change views mid-measurement and (correctly, per GCS
			// semantics) exempt the excluded member from that view's
			// messages.
			FDInterval: 50 * time.Millisecond, FDTimeout: 3 * time.Second,
			RoundTimeout: 250 * time.Millisecond, AckInterval: 15 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		p.Start()
		defer p.Stop()
		procs = append(procs, p)
	}
	const g ids.GroupName = "bench"
	for _, p := range procs {
		if err := p.Join(g); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for formation.
	deadline := time.Now().Add(10 * time.Second)
	for len(procs[0].GroupMembers(g)) != 3 {
		if time.Now().After(deadline) {
			b.Fatal("group never formed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	payload := benchMsg{Data: make([]byte, 128)}
	// Flow control: cap the outstanding window so large b.N measures
	// sustainable ordered-multicast throughput instead of overflowing the
	// delivery queues with one burst.
	const window = 1024
	waitDelivered := func(target int) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			mu.Lock()
			done := delivered[1] >= target && delivered[2] >= target && delivered[3] >= target
			mu.Unlock()
			if done {
				return
			}
			if time.Now().After(deadline) {
				b.Fatal("deliveries incomplete")
			}
			time.Sleep(time.Millisecond)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := procs[0].Multicast(g, payload); err != nil {
			b.Fatal(err)
		}
		if i%window == window-1 {
			waitDelivered(i + 1 - window/2)
		}
	}
	// Wait for full delivery everywhere.
	waitDelivered(b.N)
	b.StopTimer()
}
