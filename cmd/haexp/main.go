// Command haexp regenerates the experiment tables of EXPERIMENTS.md: the
// quantitative reproduction of the paper's Section 4 fault-tolerance
// analysis (experiments E1–E16, defined in DESIGN.md).
//
// Usage:
//
//	haexp -list             # show the experiment index
//	haexp -exp E3           # run one experiment
//	haexp -exp all          # run the full suite
//	haexp -exp all -quick   # smaller trial counts (CI scale)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hafw/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "all", "experiment ID (E1..E18) or \"all\"")
		quick = flag.Bool("quick", false, "use reduced trial counts")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range exp.Experiments() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	var runners []exp.Runner
	if *which == "all" {
		runners = exp.Experiments()
	} else {
		r, err := exp.ByID(*which)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runners = []exp.Runner{r}
	}

	failed := 0
	for _, r := range runners {
		start := time.Now()
		table, err := r.Run(*quick)
		elapsed := time.Since(start).Round(time.Millisecond)
		if err != nil {
			failed++
			fmt.Printf("%s FAILED after %v: %v\n\n", r.ID, elapsed, err)
			continue
		}
		fmt.Printf("%s(ran in %v)\n\n", table, elapsed)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
