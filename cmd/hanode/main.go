// Command hanode runs one framework server over real TCP: a replica of a
// video-on-demand content unit, participating in the service group, its
// movie's content group, and the session groups of the clients it serves.
//
// A three-server deployment on one machine:
//
//	hanode -id 1 -listen 127.0.0.1:7001 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003 &
//	hanode -id 2 -listen 127.0.0.1:7002 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003 &
//	hanode -id 3 -listen 127.0.0.1:7003 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003 &
//
// then attach a client with cmd/haclient. Killing a node mid-stream
// demonstrates the takeover; the client keeps playing.
//
// The default vod service is the chunked segment stream: clients fetch a
// manifest and issue windowed GetChunk pulls against CRC-framed chunks
// (-bitrate, -seg-duration, -chunk-bytes shape the title; -media-dir
// serves from / materializes into an on-disk segment store). The original
// frame-push MPEG service remains available as -service vod-frames, and
// -service echo runs the loadgen measurement target.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hafw/internal/core"
	"hafw/internal/ids"
	"hafw/internal/loadgen"
	"hafw/internal/media"
	"hafw/internal/metrics"
	"hafw/internal/obs"
	"hafw/internal/services/vod"
	"hafw/internal/store"
	"hafw/internal/transport/tcpnet"
)

func main() {
	var (
		id       = flag.Uint64("id", 0, "process ID (required, unique, > 0)")
		listen   = flag.String("listen", "", "TCP listen address (required)")
		peers    = flag.String("peers", "", "comma-separated id=addr peer list, including self")
		unit     = flag.String("unit", "big-buck-bunny", "movie (content unit) to serve")
		service  = flag.String("service", "vod", "service to run: vod (chunked segment stream), vod-frames (legacy frame push), or echo (loadgen measurement target)")
		backups  = flag.Int("backups", 1, "backup servers per session (the paper's B)")
		prop     = flag.Duration("propagation", 500*time.Millisecond, "context propagation period (the paper's T)")
		fps      = flag.Float64("fps", 24, "vod-frames: movie frame rate")
		bitrate  = flag.Int("bitrate", 1_000_000, "vod: title bitrate, bytes/second")
		segDur   = flag.Duration("seg-duration", time.Second, "vod: segment duration")
		chunkB   = flag.Int("chunk-bytes", 64<<10, "vod: chunk size in bytes")
		mediaDur = flag.Duration("media-duration", 60*time.Second, "vod: title duration")
		mediaDir = flag.String("media-dir", "", "vod: on-disk segment store; missing content is synthesized and written there (empty = in-memory synthesis)")
		stats    = flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
		dataDir  = flag.String("data-dir", "", "directory for the durable unit store (empty = in-memory only)")
		fsync    = flag.String("fsync", "interval", "fsync policy for the durable store: always, interval, or never")
		httpAddr = flag.String("http", "", "ops HTTP listen address for /metrics, /statusz, /healthz, /debug/trace, /debug/pprof (empty disables)")
		spanCap  = flag.Int("trace-spans", obs.DefaultSpanCapacity, "completed spans retained for /debug/trace")
	)
	flag.Parse()
	if *id == 0 || *listen == "" || *peers == "" {
		flag.Usage()
		os.Exit(2)
	}
	fsyncPolicy, err := store.ParsePolicy(*fsync)
	if err != nil {
		log.Fatalf("bad -fsync: %v", err)
	}

	peerAddrs, world, err := parsePeers(*peers)
	if err != nil {
		log.Fatalf("bad -peers: %v", err)
	}

	reg := metrics.NewRegistry()
	tracer := obs.NewTracer(ids.ProcessID(*id), *spanCap)
	tr, err := tcpnet.New(tcpnet.Config{
		Self:       ids.ProcessEndpoint(ids.ProcessID(*id)),
		ListenAddr: *listen,
		Peers:      peerAddrs,
		Metrics:    reg,
	})
	if err != nil {
		log.Fatalf("transport: %v", err)
	}

	unitName := ids.UnitName(*unit)
	var svc core.Service
	switch *service {
	case "vod":
		spec := media.Spec{
			Title:           *unit,
			Duration:        *mediaDur,
			SegmentDuration: *segDur,
			BitrateBps:      *bitrate,
			ChunkBytes:      *chunkB,
		}
		src, err := openMediaStore(spec, *mediaDir)
		if err != nil {
			log.Fatalf("media store: %v", err)
		}
		svc = vod.NewStream(src, reg)
	case "vod-frames":
		movie := vod.DefaultMovie(unitName)
		movie.FPS = *fps
		svc = vod.New(movie, vod.MPEGPolicy)
	case "echo":
		svc = loadgen.NewEchoService()
	default:
		log.Fatalf("unknown -service %q (want vod, vod-frames, or echo)", *service)
	}
	srv, err := core.NewServer(core.Config{
		Self:      ids.ProcessID(*id),
		Transport: tr,
		World:     world,
		DataDir:   *dataDir,
		Fsync:     fsyncPolicy,
		Obs:       tracer,
		Units: []core.UnitConfig{{
			Unit:              unitName,
			Service:           svc,
			Backups:           *backups,
			PropagationPeriod: *prop,
			IdleTimeout:       time.Minute,
		}},
		Metrics: reg,
	})
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	if err := srv.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	durability := "in-memory"
	if *dataDir != "" {
		durability = fmt.Sprintf("durable at %s, fsync=%s", *dataDir, *fsync)
	}
	log.Printf("hanode p%d serving %q (%s service, B=%d, T=%v, %s) on %s", *id, *unit, *service, *backups, *prop, durability, tr.Addr())

	if *httpAddr != "" {
		opsAddr, opsClose, err := obs.Serve(*httpAddr, obs.ServerConfig{
			Registry: reg,
			Tracer:   tracer,
			Status:   srv.Status,
			Health:   srv.Health,
		})
		if err != nil {
			log.Fatalf("ops http: %v", err)
		}
		defer func() { _ = opsClose() }()
		log.Printf("ops http on %s (/metrics /statusz /healthz /debug/trace /debug/pprof)", opsAddr)
	}

	if *stats > 0 {
		go func() {
			ticker := time.NewTicker(*stats)
			defer ticker.Stop()
			var last metrics.Snapshot
			for range ticker.C {
				cur := reg.Counters()
				log.Printf("stats: %s", cur.Diff(last))
				last = cur
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	srv.Stop()
}

// openMediaStore resolves the chunk source for the stream service. With no
// directory it synthesizes in memory (deterministic from the title, so all
// replicas hold identical bytes). With a directory it serves the on-disk
// segment store, materializing the synthetic title there first if the
// manifest is missing.
func openMediaStore(spec media.Spec, dir string) (media.Store, error) {
	if dir == "" {
		return media.Synthesize(spec), nil
	}
	if st, err := media.OpenDir(dir); err == nil {
		return st, nil
	}
	if err := media.WriteDir(dir, media.Synthesize(spec)); err != nil {
		return nil, fmt.Errorf("materialize %s: %w", dir, err)
	}
	return media.OpenDir(dir)
}

// parsePeers parses "1=host:port,2=host:port" into an address book and a
// world list.
func parsePeers(s string) (map[ids.EndpointID]string, []ids.ProcessID, error) {
	addrs := make(map[ids.EndpointID]string)
	var world []ids.ProcessID
	for _, part := range splitNonEmpty(s, ',') {
		var pid uint64
		var addr string
		if _, err := fmt.Sscanf(part, "%d=%s", &pid, &addr); err != nil || pid == 0 {
			return nil, nil, fmt.Errorf("entry %q (want id=host:port)", part)
		}
		addrs[ids.ProcessEndpoint(ids.ProcessID(pid))] = addr
		world = append(world, ids.ProcessID(pid))
	}
	if len(world) == 0 {
		return nil, nil, fmt.Errorf("no peers parsed")
	}
	return addrs, world, nil
}

func splitNonEmpty(s string, sep rune) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == sep {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
