// Command hastat inspects a running cluster through the nodes' ops HTTP
// endpoints: it scrapes every node's /statusz, renders a cluster table
// (group views, session roles, freshness quantiles), and can merge every
// node's /debug/trace ring into a single Chrome trace-event file whose
// flow arrows follow causality across nodes.
//
// Usage:
//
//	hastat -nodes 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//	hastat -nodes ... -watch 2s          # live-refreshing table
//	hastat -nodes ... -trace failover.json  # merged trace for chrome://tracing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"hafw/internal/metrics"
	"hafw/internal/obs"
)

func main() {
	var (
		nodes    = flag.String("nodes", "", "comma-separated ops addresses (host:port or http://host:port), required")
		watch    = flag.Duration("watch", 0, "redraw the table at this interval (0 = print once)")
		traceOut = flag.String("trace", "", "fetch /debug/trace from every node, merge, and write Chrome trace JSON here")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-request scrape timeout")
	)
	flag.Parse()
	urls := parseNodes(*nodes)
	if len(urls) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}

	if *traceOut != "" {
		if err := mergeTraces(client, urls, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "hastat: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for {
		render(os.Stdout, client, urls)
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}

// parseNodes normalizes the -nodes list into base URLs.
func parseNodes(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		out = append(out, strings.TrimRight(part, "/"))
	}
	return out
}

// scrape fetches one node's /statusz.
func scrape(client *http.Client, base string) (obs.NodeStatus, error) {
	var st obs.NodeStatus
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: HTTP %d", base, resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// render scrapes every node and prints the cluster table.
func render(w *os.File, client *http.Client, urls []string) {
	type nodeRow struct {
		base string
		st   obs.NodeStatus
		err  error
	}
	rows := make([]nodeRow, len(urls))
	for i, u := range urls {
		st, err := scrape(client, u)
		rows[i] = nodeRow{base: u, st: st, err: err}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tADDR\tUNITS\tSESSIONS\tPRIMARY\tBACKUP\tVIEWS\tSPANS-DROPPED\tSTATUS")
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintf(tw, "?\t%s\t-\t-\t-\t-\t-\t-\tunreachable: %v\n", r.base, r.err)
			continue
		}
		prim, back := 0, 0
		for _, sess := range r.st.Sessions {
			if sess.Role == "primary" {
				prim++
			} else {
				back++
			}
		}
		fmt.Fprintf(tw, "p%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\tok\n",
			r.st.Node, r.base, len(r.st.Units), len(r.st.Sessions), prim, back,
			len(r.st.Groups), r.st.TraceDropped)
	}
	tw.Flush()

	// Content-group views per unit: agreement across nodes is the virtual
	// synchrony invariant made visible.
	fmt.Fprintln(w, "\nUNITS")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "UNIT\tNODE\tVIEW\tSYNCED\tEXCHANGE\tDB-SESSIONS\tLIVE")
	for _, r := range rows {
		for _, u := range r.st.Units {
			fmt.Fprintf(tw, "%s\tp%d\t%s\t%v\t%v\t%d\t%d\n",
				u.Unit, r.st.Node, u.View, u.Synced, u.ExchangeOpen, u.DBSessions, u.Live)
		}
	}
	tw.Flush()

	// Cluster freshness: merge every node's histogram export so the
	// quantiles describe the deployment, not one replica.
	merged := map[string]*metrics.Histogram{}
	for _, r := range rows {
		for name, he := range r.st.Histograms {
			if h := merged[name]; h != nil {
				h.Merge(metrics.FromExport(he))
			} else {
				merged[name] = metrics.FromExport(he)
			}
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "\nCLUSTER LATENCIES (merged across nodes)")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "HISTOGRAM\tCOUNT\tP50\tP99\tMAX")
	for _, name := range names {
		h := merged[name]
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\n",
			name, h.Count(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
	}
	tw.Flush()
}

// mergeTraces fetches every node's span ring and writes one Chrome
// trace-event file linking spans causally across nodes.
func mergeTraces(client *http.Client, urls []string, out string) error {
	var dumps []obs.TraceDump
	for _, u := range urls {
		resp, err := client.Get(u + "/debug/trace")
		if err != nil {
			fmt.Fprintf(os.Stderr, "hastat: skipping %s: %v\n", u, err)
			continue
		}
		var dump obs.TraceDump
		err = json.NewDecoder(resp.Body).Decode(&dump)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s/debug/trace: %w", u, err)
		}
		dumps = append(dumps, dump)
	}
	if len(dumps) == 0 {
		return fmt.Errorf("no node answered /debug/trace")
	}
	events := obs.MergeChrome(dumps)
	data, err := obs.EncodeChrome(events)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	spans := 0
	for _, d := range dumps {
		spans += len(d.Spans)
	}
	fmt.Printf("wrote %s: %d spans from %d nodes, %d cross-node causal links (open in chrome://tracing or https://ui.perfetto.dev)\n",
		out, spans, len(dumps), obs.CrossNodeLinks(dumps))
	return nil
}
