// Command haclient is a framework client over real TCP: it discovers the
// content units a hanode deployment offers, opens a streaming session, and
// reports playback statistics — including the stall/duplicate accounting
// that quantifies failovers if you kill nodes while it plays.
//
// The default mode streams a chunked title: fetch the manifest, issue
// windowed GetChunk pulls, verify every chunk's CRC, and pace playback at
// the manifest bitrate. -mode frames drives the legacy frame-push vod
// service (pair with hanode -service vod-frames).
//
// Example (against the hanode deployment from cmd/hanode's doc):
//
//	haclient -id 100 -servers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003 -play 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hafw/internal/core"
	"hafw/internal/ids"
	"hafw/internal/services/vod"
	"hafw/internal/transport/tcpnet"
)

func main() {
	var (
		id      = flag.Uint64("id", 100, "client ID (unique)")
		servers = flag.String("servers", "", "comma-separated id=addr server list (required)")
		listen  = flag.String("listen", "127.0.0.1:0", "TCP listen address for responses")
		unit    = flag.String("unit", "", "content unit to play (default: first listed)")
		mode    = flag.String("mode", "stream", "player mode: stream (chunked pull) or frames (legacy push)")
		play    = flag.Duration("play", 15*time.Second, "wall-time playback budget (0 = until end of title)")

		window      = flag.Int("window", 16, "stream: pull window in chunks")
		speed       = flag.Float64("speed", 1, "stream: playback-speed multiplier")
		pullTimeout = flag.Duration("pull-timeout", 500*time.Millisecond, "stream: no-progress re-pull interval (failover recovery)")
		maxStall    = flag.Duration("max-stall", 0, "stream: exit non-zero if total stall time exceeds this (0 = no limit)")
		requireEOF  = flag.Bool("require-eof", false, "stream: exit non-zero unless playback reaches end of title")

		seekTo = flag.Uint64("seek", 0, "frames: seek to this frame after 2s (0 = no seek)")
	)
	flag.Parse()
	if *servers == "" {
		flag.Usage()
		os.Exit(2)
	}
	peerAddrs, world, err := parseServers(*servers)
	if err != nil {
		log.Fatalf("bad -servers: %v", err)
	}

	tr, err := tcpnet.New(tcpnet.Config{
		Self:       ids.ClientEndpoint(ids.ClientID(*id)),
		ListenAddr: *listen,
		Peers:      peerAddrs,
	})
	if err != nil {
		log.Fatalf("transport: %v", err)
	}
	client, err := core.NewClient(core.ClientConfig{
		Self:           ids.ClientID(*id),
		Transport:      tr,
		Servers:        world,
		RequestTimeout: time.Second,
		Retries:        5,
	})
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	defer client.Close()

	units, err := client.ListUnits()
	if err != nil {
		log.Fatalf("ListUnits: %v", err)
	}
	fmt.Println("available content units:")
	for _, u := range units {
		fmt.Printf("  %-24s %d replicas\n", u.Unit, u.Replicas)
	}
	target := ids.UnitName(*unit)
	if target == "" {
		if len(units) == 0 {
			log.Fatal("service offers no content units")
		}
		target = units[0].Unit
	}

	switch *mode {
	case "stream":
		runStream(client, target, *play, *window, *speed, *pullTimeout, *maxStall, *requireEOF)
	case "frames":
		runFrames(client, target, *play, *seekTo)
	default:
		log.Fatalf("unknown -mode %q (want stream or frames)", *mode)
	}
}

// runStream plays a chunked title through the pull player, printing
// progress while Run blocks, then the playback report. It exits the
// process non-zero when the playback violates the requested bounds.
func runStream(client *core.Client, target ids.UnitName, play time.Duration, window int, speed float64, pullTimeout, maxStall time.Duration, requireEOF bool) {
	player := vod.NewStreamPlayer(vod.StreamPlayerConfig{
		Window:      window,
		Speed:       speed,
		PullTimeout: pullTimeout,
	})
	sess, err := client.StartSession(target, player.Handler)
	if err != nil {
		log.Fatalf("StartSession(%s): %v", target, err)
	}
	log.Printf("session %v open on %q (group %s); streaming for up to %v (window=%d speed=%.1fx)",
		sess.ID, target, sess.Group, play, window, speed)

	progress := time.NewTicker(2 * time.Second)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-progress.C:
				st := player.Stats()
				log.Printf("chunks=%d bytes=%d stalls=%d stall=%v dup=%d pulls=%d repulls=%d",
					st.Chunks, st.Bytes, st.Stalls, st.StallTime.Round(time.Millisecond), st.Duplicates, st.Pulls, st.Repulls)
			case <-done:
				return
			}
		}
	}()

	stats, runErr := player.Run(sess, play)
	close(done)
	progress.Stop()
	if err := sess.End(); err != nil {
		log.Printf("EndSession: %v", err)
	}

	fmt.Printf("\nplayback report for %q:\n", target)
	fmt.Printf("  completed         %v\n", stats.Completed)
	fmt.Printf("  chunks / bytes    %d / %d\n", stats.Chunks, stats.Bytes)
	fmt.Printf("  startup delay     %v\n", stats.StartupDelay.Round(time.Millisecond))
	fmt.Printf("  stalls            %d events, %v total\n", stats.Stalls, stats.StallTime.Round(time.Millisecond))
	fmt.Printf("  duplicates        %d (takeover window)\n", stats.Duplicates)
	fmt.Printf("  crc errors        %d\n", stats.CRCErrors)
	fmt.Printf("  pulls / repulls   %d / %d (%d send retries)\n", stats.Pulls, stats.Repulls, stats.PullErrors)

	switch {
	case runErr != nil:
		log.Printf("playback failed: %v", runErr)
		os.Exit(1)
	case stats.CRCErrors > 0:
		log.Printf("playback delivered %d corrupt chunks", stats.CRCErrors)
		os.Exit(1)
	case requireEOF && !stats.Completed:
		log.Printf("playback did not reach end of title within %v", play)
		os.Exit(1)
	case maxStall > 0 && stats.StallTime > maxStall:
		log.Printf("total stall %v exceeds -max-stall %v", stats.StallTime, maxStall)
		os.Exit(1)
	}
}

// runFrames plays through the legacy frame-push service for the wall
// budget, then prints the frame report.
func runFrames(client *core.Client, target ids.UnitName, play time.Duration, seekTo uint64) {
	// The player needs the movie shape for gap classification; the
	// deployment serves DefaultMovie-shaped units.
	player := vod.NewPlayer(vod.DefaultMovie(target))
	sess, err := client.StartSession(target, player.Handler)
	if err != nil {
		log.Fatalf("StartSession(%s): %v", target, err)
	}
	log.Printf("session %v open on %q (group %s); playing for %v", sess.ID, target, sess.Group, play)

	if seekTo > 0 {
		go func() {
			time.Sleep(2 * time.Second)
			if err := sess.Send(vod.Seek{Frame: seekTo}); err != nil {
				log.Printf("seek: %v", err)
			} else {
				log.Printf("seeked to frame %d", seekTo)
			}
		}()
	}

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	deadline := time.After(play)
loop:
	for {
		select {
		case <-ticker.C:
			st := player.Stats()
			log.Printf("frames=%d unique=%d dup=%d missing=%d pos=%d",
				st.Received, st.Unique, st.Duplicates, st.MissingTotal, st.MaxIndex)
		case <-deadline:
			break loop
		}
	}

	if err := sess.End(); err != nil {
		log.Printf("EndSession: %v", err)
	}
	st := player.Stats()
	fmt.Printf("\nplayback report for %q:\n", target)
	fmt.Printf("  frames received   %d\n", st.Received)
	fmt.Printf("  unique frames     %d\n", st.Unique)
	fmt.Printf("  duplicates        %d (I=%d P=%d B=%d)\n", st.Duplicates, st.DuplicateI, st.DuplicateP, st.DuplicateB)
	fmt.Printf("  missing frames    %d (I=%d)\n", st.MissingTotal, st.MissingI)
}

// parseServers parses "1=host:port,..." into an address book and ID list.
func parseServers(s string) (map[ids.EndpointID]string, []ids.ProcessID, error) {
	addrs := make(map[ids.EndpointID]string)
	var world []ids.ProcessID
	start := 0
	for i := 0; i <= len(s); i++ {
		if i != len(s) && s[i] != ',' {
			continue
		}
		part := s[start:i]
		start = i + 1
		if part == "" {
			continue
		}
		var pid uint64
		var addr string
		if _, err := fmt.Sscanf(part, "%d=%s", &pid, &addr); err != nil || pid == 0 {
			return nil, nil, fmt.Errorf("entry %q (want id=host:port)", part)
		}
		addrs[ids.ProcessEndpoint(ids.ProcessID(pid))] = addr
		world = append(world, ids.ProcessID(pid))
	}
	if len(world) == 0 {
		return nil, nil, fmt.Errorf("no servers parsed")
	}
	return addrs, world, nil
}
