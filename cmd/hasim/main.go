// Command hasim runs the deterministic cluster simulator: a seeded,
// virtual-clock discrete-event harness that plays a chaos schedule
// (crashes, restarts, partitions, clock skew, churn) against a full
// in-process cluster and audits the paper's invariants — no lost acked
// requests within the configured tolerance, a single primary per session
// per view, and monotone context frontiers.
//
// Every random choice derives from -seed, so a failing run replays
// exactly: re-invoking hasim with the same seed, schedule, and topology
// reproduces the same virtual-time fault trace and the same verdict.
// Five virtual minutes of a 50-node cluster complete in well under a real
// minute.
//
// Usage:
//
//	hasim -seed 7 -nodes 50                  # built-in churn schedule
//	hasim -seed 7 -nodes 50 -chaos churn.json
//	hasim -seed 7 -nodes 5 -backups 0 -wal=false -shrink
//
// The -shrink flag matters when a run fails: it delta-debugs the injected
// event list, re-running the simulation on sublists until no single event
// can be removed without losing the failure, and prints the minimal
// reproducing schedule.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"hafw/internal/sim"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "PRNG seed driving chaos expansion, network jitter, and workload pacing")
		nodes    = flag.Int("nodes", 5, "server count")
		clients  = flag.Int("clients", 0, "client session count (0 = nodes/2)")
		backups  = flag.Int("backups", 1, "backups per session group (the paper's B)")
		prop     = flag.Duration("propagation", 0, "context propagation period (the paper's T; 0 = 2s)")
		virtual  = flag.Duration("virtual", 5*time.Minute, "virtual duration of the run")
		wal      = flag.Bool("wal", true, "durable unit databases (warm restart recovers from disk)")
		loss     = flag.Float64("loss", 0, "random message-loss probability")
		chaos    = flag.String("chaos", "", "chaos schedule JSON (empty = built-in bounded churn)")
		shrink   = flag.Bool("shrink", false, "on failure, delta-debug the event list to a minimal reproducer")
		probes   = flag.Int("shrink-probes", 64, "max extra simulation runs the shrinker may spend")
		events   = flag.Bool("events", false, "print the expanded fault trace before the verdict")
		dataDir  = flag.String("data", "", "WAL data directory (empty = temp dir, removed on exit)")
		fdEvery  = flag.Duration("fd-interval", 0, "failure-detector heartbeat interval (0 = 2s)")
		fdAfter  = flag.Duration("fd-timeout", 0, "failure-detector suspicion timeout (0 = 10s)")
		ackEvery = flag.Duration("ack-interval", 0, "stability ack interval (0 = 2s)")
	)
	flag.Parse()
	if err := run(*seed, *nodes, *clients, *backups, *prop, *virtual, *wal, *loss,
		*chaos, *shrink, *probes, *events, *dataDir, *fdEvery, *fdAfter, *ackEvery); err != nil {
		fmt.Fprintf(os.Stderr, "hasim: %v\n", err)
		os.Exit(2)
	}
}

// defaultSchedule is the built-in scenario: bounded churn that respects
// the configured backup count, so a correct framework must ride it out
// with zero invariant violations. With zero backups a single crash is
// already beyond tolerance; the schedule still crashes one server at a
// time so the run measures the beyond-tolerance loss the risk model
// prices instead of doing nothing.
func defaultSchedule(backups int) *sim.Schedule {
	maxDown := backups
	if maxDown < 1 {
		maxDown = 1
	}
	return &sim.Schedule{Entries: []sim.Entry{
		{Kind: sim.KindChurn, FromMS: 30_000, MTTFMS: 120_000, MTTRMS: 20_000, MaxDown: maxDown},
	}}
}

func run(seed int64, nodes, clients, backups int, prop, virtual time.Duration,
	wal bool, loss float64, chaosPath string, shrink bool, probes int,
	printEvents bool, dataDir string, fdEvery, fdAfter, ackEvery time.Duration) error {
	sched := defaultSchedule(backups)
	if chaosPath != "" {
		var err error
		if sched, err = sim.LoadSchedule(chaosPath); err != nil {
			return err
		}
	}
	if wal && dataDir == "" {
		tmp, err := os.MkdirTemp("", "hasim-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}
	cfg := sim.Config{
		Seed:        seed,
		Nodes:       nodes,
		Clients:     clients,
		Backups:     backups,
		Propagation: prop,
		Virtual:     virtual,
		WAL:         wal,
		DataDir:     dataDir,
		Loss:        loss,
		FDInterval:  fdEvery,
		FDTimeout:   fdAfter,
		AckInterval: ackEvery,
	}

	start := time.Now()
	rep, err := sim.Run(cfg, sched)
	if err != nil {
		return err
	}
	if printEvents {
		os.Stdout.Write(sim.Trace(rep.Config, expand(rep.Config, sched)))
	}
	printReport(rep, time.Since(start))
	if !rep.Failed() {
		return nil
	}
	if shrink {
		shrinkFailure(rep.Config, sched, probes)
	}
	os.Exit(1)
	return nil
}

// expand re-derives the concrete event list the run injected; Run and
// expand use the same seed and are deterministic, so the bytes match the
// run exactly.
func expand(cfg sim.Config, sched *sim.Schedule) []sim.Event {
	return sched.Expand(rand.New(rand.NewSource(cfg.Seed)), cfg.Nodes, cfg.Virtual-cfg.Tail)
}

func printReport(rep *sim.Report, wall time.Duration) {
	cfg := rep.Config
	fmt.Printf("hasim seed=%d nodes=%d clients=%d backups=%d T=%s wal=%v virtual=%s (%s real)\n",
		cfg.Seed, cfg.Nodes, cfg.Clients, cfg.Backups, cfg.Propagation, cfg.WAL, cfg.Virtual, wall.Round(time.Millisecond))
	fmt.Printf("chaos events injected: %d   invariant samples: %d\n", rep.Events, rep.Samples)
	fmt.Printf("workload: sent=%d acked=%d duplicates=%d\n", rep.Sent, rep.Acked, rep.Duplicates)
	fmt.Printf("losses: guaranteed=%d anomalous(partition)=%d beyond-tolerance=%d\n",
		rep.Lost, rep.LostAnomalous, rep.LostBeyondTolerance)
	if rep.Risk.MTTF > 0 {
		r := rep.Risk
		fmt.Printf("risk model (§4, MTTF=%s MTTR=%s): q=%.4g Ptotal-loss=%.4g Plost-update=%.4g E[dups]=%.4g\n",
			r.MTTF, r.MTTR, r.Q, r.PTotalLoss, r.PLostUpdate, r.ExpectedDuplicates)
	}
	fmt.Print(sim.FormatViolations(rep.Violations))
}

// shrinkFailure delta-debugs the failing run's event list: the property
// is "re-simulating this sublist still fails", so every probe is a full
// deterministic run from the same seed.
func shrinkFailure(cfg sim.Config, sched *sim.Schedule, probes int) {
	events := expand(cfg, sched)
	fmt.Printf("\nshrinking %d events (max %d probes)...\n", len(events), probes)
	minimal := sim.Shrink(events, func(sub []sim.Event) bool {
		probeCfg := cfg
		if probeCfg.WAL {
			tmp, err := os.MkdirTemp("", "hasim-shrink-*")
			if err != nil {
				return false
			}
			defer os.RemoveAll(tmp)
			probeCfg.DataDir = tmp
		}
		rep, err := sim.RunEvents(probeCfg, sub)
		return err == nil && rep.Failed()
	}, probes)
	fmt.Printf("minimal reproducing schedule (%d events):\n", len(minimal))
	os.Stdout.Write(sim.Trace(cfg, minimal))
}
