// Command halint runs the framework's static checkers (determinism,
// lockcheck, wirecheck, tracecheck, lockorder, hotpath, leakcheck,
// handlercheck; see DESIGN.md "Static analysis") over Go packages. It
// supports two modes:
//
//   - Standalone: `halint [-fix] [-writeschema] ./...` loads the named
//     packages (plus dependencies, for fact propagation) and reports
//     diagnostics. -fix applies the mechanical suggested fixes (missing
//     defer Unlock, sort.Slice after a map range, defer ticker.Stop,
//     loop-invariant buffer hoists); -writeschema regenerates
//     internal/wire/schema.golden from the current tree.
//
//   - Unit checker: when invoked by `go vet -vettool=$(pwd)/halint`, the
//     go command drives halint once per package with a JSON config file;
//     facts flow between those processes through .vetx files. This mode
//     also covers _test.go files, which the standalone loader skips.
//
// Baseline: `-baseline halint.baseline` (or the HALINT_BASELINE
// environment variable, which also reaches the unit-checker subprocesses
// `go vet` spawns) suppresses the findings recorded in the baseline file
// so only new findings fail; `-writebaseline halint.baseline`
// grandfathers the current findings. Baseline keys are
// file-relative-to-the-baseline plus analyzer plus message — no line
// numbers, so unrelated edits don't invalidate them.
//
// Exit status: 0 for no findings, 2 for findings, 1 for operational
// errors — matching `go vet`'s convention.
package main

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hafw/internal/analysis"
	"hafw/internal/analysis/load"
	"hafw/internal/analyzers/determinism"
	"hafw/internal/analyzers/handlercheck"
	"hafw/internal/analyzers/hotpath"
	"hafw/internal/analyzers/leakcheck"
	"hafw/internal/analyzers/lockcheck"
	"hafw/internal/analyzers/lockorder"
	"hafw/internal/analyzers/tracecheck"
	"hafw/internal/analyzers/wirecheck"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	handlercheck.Analyzer,
	hotpath.Analyzer,
	leakcheck.Analyzer,
	lockcheck.Analyzer,
	lockorder.Analyzer,
	tracecheck.Analyzer,
	wirecheck.Analyzer,
}

func main() {
	versionFlag := flag.String("V", "", "print version and exit (go vet tool-ID protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet protocol)")
	fixFlag := flag.Bool("fix", false, "apply suggested fixes (standalone mode)")
	schemaFlag := flag.Bool("writeschema", false, "regenerate the wire schema golden file (standalone mode)")
	baselineFlag := flag.String("baseline", os.Getenv("HALINT_BASELINE"), "suppress findings recorded in this baseline file; only new findings fail")
	writeBaselineFlag := flag.String("writebaseline", "", "record the current findings in this baseline file and exit 0 (standalone mode)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: halint [-fix | -writeschema] packages...\n")
		fmt.Fprintf(flag.CommandLine.Output(), "   or: go vet -vettool=/path/to/halint packages...\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0], *baselineFlag))
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(1)
	}
	os.Exit(standalone(args, *fixFlag, *schemaFlag, *baselineFlag, *writeBaselineFlag))
}

// printVersion implements the `-V=full` handshake the go command uses to
// build cache keys: the output must identify this exact tool build, so it
// includes a hash of the executable.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

// ---- standalone mode ----

func standalone(patterns []string, fix, writeSchema bool, baseline, writeBaseline string) int {
	pkgs, fset, err := load.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "halint: %v\n", err)
		return 1
	}
	factTables := make(map[string]analysis.PackageFacts)
	deps := func(path string) analysis.PackageFacts { return factTables[path] }

	var findings []analysis.Finding
	for _, p := range pkgs {
		for _, e := range p.Errors {
			fmt.Fprintf(os.Stderr, "halint: %s: %v\n", p.List.ImportPath, e)
		}
		if len(p.Errors) > 0 {
			return 1
		}
		facts, fs, err := analysis.RunAnalyzers(p.Loaded(fset), analyzers, deps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "halint: %v\n", err)
			return 1
		}
		factTables[p.List.ImportPath] = facts
		if !p.List.DepsOnly {
			findings = append(findings, fs...)
		}
	}

	if writeSchema {
		return doWriteSchema(fset, pkgs)
	}
	if fix {
		findings = applyFixes(fset, findings)
	}
	if writeBaseline != "" {
		return doWriteBaseline(fset, findings, writeBaseline)
	}
	if baseline != "" {
		var err error
		findings, err = filterBaseline(fset, findings, baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "halint: %v\n", err)
			return 1
		}
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(f.Pos), f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// ---- baseline mode ----

// baselineKey renders one finding as its baseline line: the file path
// relative to the baseline's directory, the analyzer, and the message.
// Line numbers are deliberately absent so unrelated edits to a file do
// not invalidate its grandfathered findings.
func baselineKey(fset *token.FileSet, baseDir string, f analysis.Finding) string {
	file := fset.Position(f.Pos).Filename
	if rel, err := filepath.Rel(baseDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return file + ": " + f.Analyzer + ": " + f.Message
}

// loadBaseline reads the grandfathered finding keys. A missing file is an
// empty baseline, so bootstrapping does not require a dummy file.
func loadBaseline(path string) (map[string]bool, string, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, "", err
	}
	baseDir := filepath.Dir(abs)
	keys := make(map[string]bool)
	data, err := os.ReadFile(abs)
	if err != nil {
		if os.IsNotExist(err) {
			return keys, baseDir, nil
		}
		return nil, "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		keys[line] = true
	}
	return keys, baseDir, nil
}

// filterBaseline drops findings whose keys are grandfathered.
func filterBaseline(fset *token.FileSet, findings []analysis.Finding, path string) ([]analysis.Finding, error) {
	keys, baseDir, err := loadBaseline(path)
	if err != nil {
		return nil, err
	}
	var kept []analysis.Finding
	for _, f := range findings {
		if !keys[baselineKey(fset, baseDir, f)] {
			kept = append(kept, f)
		}
	}
	return kept, nil
}

// doWriteBaseline grandfathers the current findings: every key is
// written once, sorted, under a header explaining the contract.
func doWriteBaseline(fset *token.FileSet, findings []analysis.Finding, path string) int {
	abs, err := filepath.Abs(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "halint: %v\n", err)
		return 1
	}
	baseDir := filepath.Dir(abs)
	seen := make(map[string]bool)
	var keys []string
	for _, f := range findings {
		k := baselineKey(fset, baseDir, f)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# halint baseline — grandfathered findings; new findings still fail.\n")
	b.WriteString("# Shrink this file by fixing findings; regenerate with: go run ./cmd/halint -writebaseline halint.baseline ./...\n")
	for _, k := range keys {
		b.WriteString(k + "\n")
	}
	if err := os.WriteFile(abs, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "halint: %v\n", err)
		return 1
	}
	fmt.Printf("halint: wrote %s (%d findings)\n", path, len(keys))
	return 0
}

// applyFixes writes every suggested fix to disk and returns the findings
// that had no mechanical fix.
func applyFixes(fset *token.FileSet, findings []analysis.Finding) []analysis.Finding {
	var fixable, rest []analysis.Finding
	for _, f := range findings {
		if len(f.SuggestedFixes) > 0 {
			fixable = append(fixable, f)
		} else {
			rest = append(rest, f)
		}
	}
	if len(fixable) == 0 {
		return rest
	}
	fixed, err := analysis.ApplyFixes(fset, fixable)
	if err != nil {
		fmt.Fprintf(os.Stderr, "halint: -fix: %v\n", err)
		return findings
	}
	for name, content := range fixed {
		if err := os.WriteFile(name, content, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "halint: -fix: %v\n", err)
			return findings
		}
	}
	for _, f := range fixable {
		fmt.Fprintf(os.Stderr, "%s: fixed: %s\n", fset.Position(f.Pos), f.SuggestedFixes[0].Message)
	}
	return rest
}

// doWriteSchema regenerates the wire schema golden file from every wire
// message type in the loaded packages.
func doWriteSchema(fset *token.FileSet, pkgs []*load.Package) int {
	var entries []wirecheck.SchemaEntry
	seen := make(map[string]string) // wire name → type name
	dir := ""
	for _, p := range pkgs {
		pass := &analysis.Pass{
			Fset: fset, Files: p.Files, Pkg: p.Types, TypesInfo: p.Info,
			Report: func(analysis.Diagnostic) {},
		}
		if dir == "" {
			dir = wirecheck.SchemaDir(pass)
		}
		for _, e := range wirecheck.PackageEntries(pass) {
			if prev, dup := seen[e.WireName]; dup && prev != e.TypeName {
				fmt.Fprintf(os.Stderr, "halint: wire name %q claimed by both %s and %s\n", e.WireName, prev, e.TypeName)
				return 1
			}
			seen[e.WireName] = e.TypeName
			entries = append(entries, e)
		}
	}
	if dir == "" {
		fmt.Fprintln(os.Stderr, "halint: -writeschema: no package in the load graph imports the wire package")
		return 1
	}
	path := filepath.Join(dir, wirecheck.SchemaFile)
	if err := os.WriteFile(path, wirecheck.FormatSchema(entries), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "halint: %v\n", err)
		return 1
	}
	fmt.Printf("halint: wrote %s (%d messages)\n", path, len(entries))
	return 0
}

// ---- unit checker mode (go vet -vettool) ----

// vetConfig is the JSON configuration the go command writes for each
// package unit (see golang.org/x/tools/go/analysis/unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitCheck(cfgPath, baseline string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "halint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "halint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	pkg, err := load.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
	if err != nil || len(pkg.Errors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, make(analysis.PackageFacts))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "halint: %s: %v\n", cfg.ImportPath, err)
		}
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "%v\n", e)
		}
		return 1
	}

	depFacts := make(map[string]analysis.PackageFacts)
	deps := func(path string) analysis.PackageFacts {
		if t, ok := depFacts[path]; ok {
			return t
		}
		vetx, ok := cfg.PackageVetx[path]
		if !ok {
			if mapped, inMap := cfg.ImportMap[path]; inMap {
				vetx, ok = cfg.PackageVetx[mapped]
			}
		}
		table := make(analysis.PackageFacts)
		if ok {
			if f, err := os.Open(vetx); err == nil {
				_ = gob.NewDecoder(f).Decode(&table)
				f.Close()
			}
		}
		depFacts[path] = table
		return table
	}

	facts, findings, err := analysis.RunAnalyzers(pkg.Loaded(fset), analyzers, deps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "halint: %v\n", err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	if baseline != "" {
		findings, err = filterBaseline(fset, findings, baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "halint: %v\n", err)
			return 1
		}
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(f.Pos), f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// writeVetx persists the package's fact table; the go command hands the
// file to dependent packages' runs via PackageVetx.
func writeVetx(path string, facts analysis.PackageFacts) int {
	if path == "" {
		return 0
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "halint: %v\n", err)
		return 1
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(facts); err != nil {
		fmt.Fprintf(os.Stderr, "halint: %v\n", err)
		return 1
	}
	return 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
