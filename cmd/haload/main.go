// Command haload is the framework's load generator: it drives a
// configurable session mix from a fleet of concurrent clients, measures
// throughput, sub-bucket-resolution latency quantiles, errors, and
// per-server skew, and writes the machine-readable BENCH_loadgen.json.
//
// Against an in-process cluster (capacity measurement on one machine):
//
//	haload -clusters memnet -servers 3 -clients 64 -duration 10s
//
// Against a running hanode deployment over TCP (start the nodes with
// -service echo so requests are answered individually):
//
//	hanode -id 1 -listen 127.0.0.1:7001 -peers ... -service echo &
//	hanode -id 2 -listen 127.0.0.1:7002 -peers ... -service echo &
//	hanode -id 3 -listen 127.0.0.1:7003 -peers ... -service echo &
//	haload -clusters tcpnet -addrs 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003 -clients 64
//
// Workload shape: -arrival closed (think-time loop, the default) or
// -arrival open (Poisson, fixed offered rate); -zipf concentrates
// sessions on hot units; -session-len and -req-bytes accept exponential
// jitter via -len-dist exp / -size-dist exp (capped at -req-bytes-max).
//
// -workload stream switches to the chunked streaming workload: -clients
// players pull Zipf-sampled titles through windowed GetChunk sessions and
// the run reports stall/rebuffer distributions to BENCH_stream.json. A
// memnet target serves synthetic titles shaped by -bitrate,
// -seg-duration, -chunk-bytes, -media-duration; a tcpnet target needs the
// hanode deployment started with -service vod.
//
// -check exits non-zero if any request errored (or, for stream, any
// playback failed to complete) — the CI smoke mode.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"hafw/internal/ids"
	"hafw/internal/loadgen"
	"hafw/internal/media"
	"hafw/internal/transport/memnet"
)

func main() {
	var (
		clusters = flag.String("clusters", "memnet", "target kind: memnet (in-process cluster) or tcpnet (existing hanode deployment)")
		servers  = flag.Int("servers", 3, "memnet: cluster size (R = this)")
		backups  = flag.Int("backups", 1, "memnet: per-session backups (the paper's B)")
		prop     = flag.Duration("propagation", 50*time.Millisecond, "memnet: context propagation period (the paper's T)")
		units    = flag.Int("units", 4, "memnet: content units served")
		latency  = flag.Duration("net-latency", 0, "memnet: simulated one-way network latency")
		addrs    = flag.String("addrs", "", "tcpnet: comma-separated id=host:port server list")

		workload = flag.String("workload", "echo", "workload kind: echo (request/response) or stream (chunked playback)")
		clients  = flag.Int("clients", 16, "driver client fleet size (stream: player count)")
		duration = flag.Duration("duration", 10*time.Second, "echo: measurement window")
		seed     = flag.Int64("seed", 1, "workload randomness seed")

		arrival  = flag.String("arrival", "closed", "echo: arrival process: closed (think-time) or open (Poisson)")
		rate     = flag.Float64("rate", 0, "echo open: total offered load, requests/second across the fleet (0 = 200/s per client)")
		think    = flag.Duration("think", 2*time.Millisecond, "echo closed: mean think time between requests")
		sessLen  = flag.Int("session-len", 100, "echo: mean requests per session")
		lenDist  = flag.String("len-dist", "fixed", "echo: session length distribution: fixed or exp")
		reqBytes = flag.Int("req-bytes", 64, "echo: mean request padding bytes")
		reqMax   = flag.Int("req-bytes-max", 0, "echo: exponential size-draw cap, bytes (0 = 8x mean)")
		sizeDist = flag.String("size-dist", "fixed", "echo: request size distribution: fixed or exp")
		zipf     = flag.Float64("zipf", 0, "Zipf unit-popularity exponent (>1 = hot-spotting, 0 = uniform)")
		timeout  = flag.Duration("req-timeout", 5*time.Second, "echo: per-request response timeout / session drain grace")

		playbacks   = flag.Int("playbacks", 1, "stream: playbacks per player")
		window      = flag.Int("window", 16, "stream: pull window in chunks")
		speed       = flag.Float64("speed", 1, "stream: playback-speed multiplier")
		pullTimeout = flag.Duration("pull-timeout", 500*time.Millisecond, "stream: no-progress re-pull interval")
		maxWall     = flag.Duration("max-wall", 60*time.Second, "stream: wall-time budget per playback")
		bitrate     = flag.Int("bitrate", 1_000_000, "stream memnet: synthetic title bitrate, bytes/second")
		segDur      = flag.Duration("seg-duration", time.Second, "stream memnet: segment duration")
		chunkB      = flag.Int("chunk-bytes", 64<<10, "stream memnet: chunk size in bytes")
		mediaDur    = flag.Duration("media-duration", 10*time.Second, "stream memnet: title duration")

		out   = flag.String("out", "", "result file path (default BENCH_loadgen.json / BENCH_stream.json; \"none\" = don't write)")
		check = flag.Bool("check", false, "exit non-zero if any request errored (CI smoke mode)")
	)
	flag.Parse()
	if *out == "" {
		if *workload == "stream" {
			*out = "BENCH_stream.json"
		} else {
			*out = "BENCH_loadgen.json"
		}
	} else if *out == "none" {
		*out = ""
	}

	if *workload != "echo" && *workload != "stream" {
		log.Fatalf("unknown -workload %q (want echo or stream)", *workload)
	}
	spec := media.Spec{
		Duration:        *mediaDur,
		SegmentDuration: *segDur,
		BitrateBps:      *bitrate,
		ChunkBytes:      *chunkB,
	}

	var target loadgen.Target
	switch *clusters {
	case "memnet":
		log.Printf("bringing up in-process cluster: %d servers, B=%d, T=%v, %d units",
			*servers, *backups, *prop, *units)
		mcfg := loadgen.MemnetConfig{
			Servers:     *servers,
			Backups:     *backups,
			Propagation: *prop,
			Units:       *units,
			Net:         memnet.Config{Latency: *latency},
		}
		if *workload == "stream" {
			mcfg.Service = loadgen.StreamService(spec)
		}
		mt, err := loadgen.NewMemnetTarget(mcfg)
		if err != nil {
			log.Fatalf("memnet target: %v", err)
		}
		target = mt
	case "tcpnet":
		if *addrs == "" {
			log.Fatal("-clusters tcpnet requires -addrs")
		}
		book, world, err := parseAddrs(*addrs)
		if err != nil {
			log.Fatalf("bad -addrs: %v", err)
		}
		tt, err := loadgen.NewTCPTarget(loadgen.TCPConfig{Addrs: book, World: world})
		if err != nil {
			log.Fatalf("tcpnet target: %v", err)
		}
		target = tt
	default:
		log.Fatalf("unknown -clusters %q (want memnet or tcpnet)", *clusters)
	}
	defer target.Close()

	if *workload == "stream" {
		log.Printf("streaming: %d players x %d playbacks (window=%d speed=%.1fx)",
			*clients, *playbacks, *window, *speed)
		res, err := loadgen.RunStream(loadgen.StreamConfig{
			Target:      target,
			Players:     *clients,
			Playbacks:   *playbacks,
			ZipfS:       *zipf,
			Window:      *window,
			Speed:       *speed,
			PullTimeout: *pullTimeout,
			MaxWall:     *maxWall,
			Seed:        *seed,
		})
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		fmt.Print(res.Summary())
		if *out != "" {
			if err := res.WriteJSON(*out); err != nil {
				log.Fatalf("write %s: %v", *out, err)
			}
			log.Printf("wrote %s", *out)
		}
		if *check && (res.Errors.Total > 0 || res.Totals.Completed < res.Totals.Playbacks || res.Totals.CRCErrors > 0) {
			log.Printf("FAIL: %d error(s), %d/%d playbacks completed, %d CRC error(s)",
				res.Errors.Total, res.Totals.Completed, res.Totals.Playbacks, res.Totals.CRCErrors)
			os.Exit(1)
		}
		return
	}

	w := loadgen.Workload{
		Arrival:        loadgen.Arrival(*arrival),
		Think:          *think,
		SessionLen:     *sessLen,
		SessionLenDist: loadgen.Dist(*lenDist),
		ReqBytes:       *reqBytes,
		ReqBytesMax:    *reqMax,
		ReqBytesDist:   loadgen.Dist(*sizeDist),
		ZipfS:          *zipf,
		ReqTimeout:     *timeout,
	}
	if *rate > 0 {
		w.RatePerClient = *rate / float64(*clients)
	}

	log.Printf("driving %d clients for %v (%s arrival)", *clients, *duration, w.Arrival)
	res, err := loadgen.Run(loadgen.Config{
		Target:   target,
		Clients:  *clients,
		Duration: *duration,
		Workload: w,
		Seed:     *seed,
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Print(res.Summary())
	if *out != "" {
		if err := res.WriteJSON(*out); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}
	if *check && res.Errors.Total > 0 {
		log.Printf("FAIL: %d request error(s)", res.Errors.Total)
		os.Exit(1)
	}
}

// parseAddrs parses "1=host:port,2=host:port" into an address book and a
// world list.
func parseAddrs(s string) (map[ids.EndpointID]string, []ids.ProcessID, error) {
	book := make(map[ids.EndpointID]string)
	var world []ids.ProcessID
	start := 0
	for i := 0; i <= len(s); i++ {
		if i != len(s) && s[i] != ',' {
			continue
		}
		part := s[start:i]
		start = i + 1
		if part == "" {
			continue
		}
		eq := -1
		for j := range part {
			if part[j] == '=' {
				eq = j
				break
			}
		}
		if eq <= 0 || eq == len(part)-1 {
			return nil, nil, fmt.Errorf("entry %q (want id=host:port)", part)
		}
		pid, err := strconv.ParseUint(part[:eq], 10, 64)
		if err != nil || pid == 0 {
			return nil, nil, fmt.Errorf("entry %q: bad id", part)
		}
		book[ids.ProcessEndpoint(ids.ProcessID(pid))] = part[eq+1:]
		world = append(world, ids.ProcessID(pid))
	}
	if len(world) == 0 {
		return nil, nil, fmt.Errorf("no servers parsed")
	}
	return book, world, nil
}
