// Quickstart: the smallest complete service built on the framework.
//
// It defines a one-file "greeting" service (session context = the
// client's chosen name and a greeting counter), brings up three replicated
// servers on an in-memory network, talks to them through a client that
// only ever addresses abstract groups, kills the primary mid-session, and
// shows the session surviving with its context intact.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"log"
	"sync"
	"time"

	"hafw/internal/core"
	"hafw/internal/ids"
	"hafw/internal/transport/memnet"
	"hafw/internal/waitx"
	"hafw/internal/wire"
)

// --- the service: requests, responses, session state ---

// SetName is a context update: the client tells the service its name.
type SetName struct{ Name string }

// WireName implements wire.Message.
func (SetName) WireName() string { return "quickstart.SetName" }

// Greet asks for a greeting.
type Greet struct{}

// WireName implements wire.Message.
func (Greet) WireName() string { return "quickstart.Greet" }

// Greeting is the response.
type Greeting struct{ Text string }

// WireName implements wire.Message.
func (Greeting) WireName() string { return "quickstart.Greeting" }

func init() {
	wire.Register(SetName{})
	wire.Register(Greet{})
	wire.Register(Greeting{})
}

// greeterService implements core.Service.
type greeterService struct{}

func (greeterService) NewSession(unit ids.UnitName, sid ids.SessionID, client ids.ClientID) core.Session {
	return &greeterSession{}
}

// greeterSession implements core.Session. Its context — the name and the
// greeting count — is what the framework replicates at three freshness
// levels.
type greeterSession struct {
	mu     sync.Mutex
	name   string
	count  int
	active bool
	r      core.Responder
}

type greeterCtx struct {
	Name  string
	Count int
}

func (s *greeterSession) ApplyUpdate(body wire.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m := body.(type) {
	case SetName:
		s.name = m.Name
	case Greet:
		s.count++
		if s.active && s.r != nil {
			s.r.Send(Greeting{Text: fmt.Sprintf("hello %s, greeting #%d", s.name, s.count)})
		}
	}
}

func (s *greeterSession) Activate(r core.Responder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active, s.r = true, r
}

func (s *greeterSession) Deactivate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active, s.r = false, nil
}

func (s *greeterSession) Close() { s.Deactivate() }

func (s *greeterSession) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(greeterCtx{Name: s.name, Count: s.count})
	return buf.Bytes()
}

func (s *greeterSession) Restore(ctx []byte) {
	var c greeterCtx
	if gob.NewDecoder(bytes.NewReader(ctx)).Decode(&c) != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.name, s.count = c.Name, c.Count
}

func (s *greeterSession) Sync(ctx []byte) {
	var c greeterCtx
	if gob.NewDecoder(bytes.NewReader(ctx)).Decode(&c) != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.Count > s.count {
		s.count = c.Count
	}
}

// --- the deployment ---

func main() {
	const unit ids.UnitName = "greetings"
	net := memnet.New(memnet.Config{})
	defer net.Close()
	world := []ids.ProcessID{1, 2, 3}

	var servers []*core.Server
	for _, pid := range world {
		ep, err := net.Attach(ids.ProcessEndpoint(pid))
		if err != nil {
			log.Fatal(err)
		}
		srv, err := core.NewServer(core.Config{
			Self:      pid,
			Transport: ep,
			World:     world,
			Units: []core.UnitConfig{{
				Unit:              unit,
				Service:           greeterService{},
				Backups:           1,                     // the paper's B
				PropagationPeriod: 50 * time.Millisecond, // the paper's T
			}},
			FDInterval: 10 * time.Millisecond, FDTimeout: 60 * time.Millisecond,
			RoundTimeout: 100 * time.Millisecond, AckInterval: 15 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		defer srv.Stop()
		servers = append(servers, srv)
	}
	fmt.Println("▸ three servers up, replicating content unit \"greetings\" (B=1, T=50ms)")

	// A client: it knows the service group a priori and nothing else.
	cep, err := net.Attach(ids.ClientEndpoint(100))
	if err != nil {
		log.Fatal(err)
	}
	client, err := core.NewClient(core.ClientConfig{Self: 100, Transport: cep, Servers: world})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if err := client.WaitUnit(unit, len(world), 10*time.Second); err != nil {
		log.Fatal(err)
	}
	units, err := client.ListUnits()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("▸ service offers: %v\n", units)

	greetings := make(chan Greeting, 16)
	sess, err := client.StartSession(unit, func(seq uint64, body wire.Message) {
		if g, ok := body.(Greeting); ok {
			greetings <- g
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("▸ session %v open; all requests go to abstract group %q\n", sess.ID, sess.Group)

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(sess.Send(SetName{Name: "Ada"}))
	must(sess.Send(Greet{}))
	fmt.Printf("▸ got: %q\n", (<-greetings).Text)

	// Kill whoever is the primary; the client does not change a thing.
	victim := servers[0].PrimaryOf(unit, sess.ID)
	net.Crash(ids.ProcessEndpoint(victim))
	fmt.Printf("▸ crashed the primary (%v) mid-session...\n", victim)

	deadline := time.Now().Add(10 * time.Second)
	for {
		must(sess.Send(Greet{}))
		if g, ok := waitx.Recv(greetings, 300*time.Millisecond); ok {
			fmt.Printf("▸ got after failover: %q\n", g.Text)
			fmt.Println("▸ the name survived (backup context) and the count resumed (propagated context)")
			must(sess.End())
			fmt.Println("▸ session ended cleanly — quickstart complete")
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("failover never completed")
		}
	}
}
