// VoD example: the paper's motivating service. Three servers replicate a
// movie; a client watches it; we seek around, crash the primary
// mid-stream, and print the playback statistics that quantify the
// takeover (duplicates bounded by the propagation period — the "half a
// second of duplicate video frames" of Section 3.1).
//
// Run with: go run ./examples/vod
package main

import (
	"fmt"
	"log"
	"time"

	"hafw/internal/core"
	"hafw/internal/ids"
	"hafw/internal/services/vod"
	"hafw/internal/transport/memnet"
)

func main() {
	movie := vod.Movie{Name: "big-buck-bunny", Frames: 20000, FPS: 48, GOP: 12, FrameSize: 256}
	const (
		backups     = 1
		propagation = 250 * time.Millisecond
	)

	net := memnet.New(memnet.Config{})
	defer net.Close()
	world := []ids.ProcessID{1, 2, 3}

	var servers []*core.Server
	for _, pid := range world {
		ep, err := net.Attach(ids.ProcessEndpoint(pid))
		if err != nil {
			log.Fatal(err)
		}
		srv, err := core.NewServer(core.Config{
			Self:      pid,
			Transport: ep,
			World:     world,
			Units: []core.UnitConfig{{
				Unit:              movie.Name,
				Service:           vod.New(movie, vod.MPEGPolicy),
				Backups:           backups,
				PropagationPeriod: propagation,
			}},
			FDInterval: 10 * time.Millisecond, FDTimeout: 60 * time.Millisecond,
			RoundTimeout: 100 * time.Millisecond, AckInterval: 15 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		defer srv.Stop()
		servers = append(servers, srv)
	}
	fmt.Printf("▸ 3 servers replicate %q (B=%d, T=%v, MPEG takeover policy)\n",
		movie.Name, backups, propagation)

	cep, err := net.Attach(ids.ClientEndpoint(7))
	if err != nil {
		log.Fatal(err)
	}
	client, err := core.NewClient(core.ClientConfig{Self: 7, Transport: cep, Servers: world})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if err := client.WaitUnit(movie.Name, len(world), 10*time.Second); err != nil {
		log.Fatal(err)
	}
	player := vod.NewPlayer(movie)
	sess, err := client.StartSession(movie.Name, player.Handler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("▸ watching via session group %q at %.0f fps\n", sess.Group, movie.FPS)

	time.Sleep(time.Second)
	fmt.Printf("▸ 1s in: %s\n", statLine(player))

	// Skip to "scene 4" (paper's example of a context update).
	if err := sess.Send(vod.Seek{Frame: 5000}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("▸ sent Seek{5000} — a context update the backups also see")
	time.Sleep(500 * time.Millisecond)

	victim := servers[0].PrimaryOf(movie.Name, sess.ID)
	net.Crash(ids.ProcessEndpoint(victim))
	fmt.Printf("▸ crashed the streaming primary (%v)\n", victim)

	time.Sleep(2 * time.Second)
	st := player.Stats()
	fmt.Printf("▸ 2s after the crash: %s\n", statLine(player))
	bound := int(movie.FPS * propagation.Seconds())
	fmt.Printf("▸ duplicates %d vs. paper bound fps×T = %d; position resumed near the seek target (max frame %d)\n",
		st.Duplicates, bound, st.MaxIndex)
	fmt.Println("  (the \"missing\" count includes the frames the Seek deliberately skipped over)")

	if err := sess.End(); err != nil {
		log.Printf("end: %v", err)
	}
	fmt.Println("▸ done: the client never knew which server was streaming")
}

func statLine(p *vod.Player) string {
	st := p.Stats()
	return fmt.Sprintf("received=%d unique=%d duplicates=%d (I=%d) missing=%d (I=%d)",
		st.Received, st.Unique, st.Duplicates, st.DuplicateI, st.MissingTotal, st.MissingI)
}
