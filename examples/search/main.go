// Search example: the paper's third motivating service — successively
// narrower queries where each query can refine earlier result sets. The
// session context (the list of result sets) survives a network partition:
// the client keeps refining on whichever side it can reach, and the
// service heals transparently afterwards.
//
// Run with: go run ./examples/search
package main

import (
	"fmt"
	"log"
	"time"

	"hafw/internal/core"
	"hafw/internal/ids"
	"hafw/internal/services/search"
	"hafw/internal/transport/memnet"
	"hafw/internal/waitx"
	"hafw/internal/wire"
)

func main() {
	corpus := search.GenerateCorpus("papers", 500)
	net := memnet.New(memnet.Config{})
	defer net.Close()
	world := []ids.ProcessID{1, 2, 3}

	var servers []*core.Server
	for _, pid := range world {
		ep, err := net.Attach(ids.ProcessEndpoint(pid))
		if err != nil {
			log.Fatal(err)
		}
		srv, err := core.NewServer(core.Config{
			Self:      pid,
			Transport: ep,
			World:     world,
			Units: []core.UnitConfig{{
				Unit:              corpus.Name,
				Service:           search.New(corpus),
				Backups:           1,
				PropagationPeriod: 100 * time.Millisecond,
			}},
			FDInterval: 10 * time.Millisecond, FDTimeout: 60 * time.Millisecond,
			RoundTimeout: 100 * time.Millisecond, AckInterval: 15 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		defer srv.Stop()
		servers = append(servers, srv)
	}
	fmt.Printf("▸ corpus %q (%d documents) served by 3 replicas\n", corpus.Name, corpus.Len())

	cep, err := net.Attach(ids.ClientEndpoint(9))
	if err != nil {
		log.Fatal(err)
	}
	client, err := core.NewClient(core.ClientConfig{Self: 9, Transport: cep, Servers: world})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if err := client.WaitUnit(corpus.Name, len(world), 10*time.Second); err != nil {
		log.Fatal(err)
	}
	results := make(chan search.ResultSet, 16)
	sess, err := client.StartSession(corpus.Name, func(seq uint64, body wire.Message) {
		if rs, ok := body.(search.ResultSet); ok {
			results <- rs
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	ask := func(what string, m wire.Message) search.ResultSet {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := sess.Send(m); err != nil {
				log.Fatal(err)
			}
			if rs, ok := waitx.Recv(results, 500*time.Millisecond); ok {
				fmt.Printf("▸ %s → result set #%d with %d documents\n", what, rs.Index, len(rs.DocIDs))
				return rs
			}
			if time.Now().After(deadline) {
				log.Fatalf("no answer to %s", what)
			}
			// Retry: the service may be mid-failover; duplicates are new
			// queries, which only extends the history.
		}
	}

	ask(`Query{"replication"}`, search.Query{Word: "replication"})
	ask(`refine #1 to year > 1995`, search.Query{AfterYear: 1995, Base: 1})

	// Partition: the current primary alone on one side, the client with
	// the rest. The session migrates inside the majority component.
	victim := servers[0].PrimaryOf(corpus.Name, sess.ID)
	var rest []ids.EndpointID
	for _, pid := range world {
		if pid != victim {
			rest = append(rest, ids.ProcessEndpoint(pid))
		}
	}
	rest = append(rest, client.Endpoint())
	net.Partition([]ids.EndpointID{ids.ProcessEndpoint(victim)}, rest)
	fmt.Printf("▸ partitioned away the primary (%v); refining on the majority side...\n", victim)
	time.Sleep(500 * time.Millisecond)

	ask(`Query{"group"}`, search.Query{Word: "group"})
	ask(`intersect #2 with #3`, search.Intersect{A: 2, B: 3})

	net.Heal()
	fmt.Println("▸ network healed; the isolated server rejoins and the databases merge")
	time.Sleep(700 * time.Millisecond)

	ask(`refine #4 to "membership"`, search.Query{Word: "membership", Base: 4})
	if err := sess.End(); err != nil {
		log.Printf("end: %v", err)
	}
	fmt.Println("▸ five result sets accumulated across a partition — the client never re-issued its history")
}
