// Distance-education example: a student works through an adaptive lesson
// (the paper's second motivating service). The session context — syllabus
// position, quiz grades, pending remedial material — survives a server
// crash in the middle of the lesson; the student just keeps studying.
//
// Run with: go run ./examples/education
package main

import (
	"fmt"
	"log"
	"time"

	"hafw/internal/core"
	"hafw/internal/ids"
	"hafw/internal/services/edu"
	"hafw/internal/transport/memnet"
	"hafw/internal/wire"
)

func main() {
	topic := edu.GenerateTopic("distributed-systems-101", 15)
	net := memnet.New(memnet.Config{})
	defer net.Close()
	world := []ids.ProcessID{1, 2, 3}

	var servers []*core.Server
	for _, pid := range world {
		ep, err := net.Attach(ids.ProcessEndpoint(pid))
		if err != nil {
			log.Fatal(err)
		}
		srv, err := core.NewServer(core.Config{
			Self:      pid,
			Transport: ep,
			World:     world,
			Units: []core.UnitConfig{{
				Unit:              topic.Name,
				Service:           edu.New(topic),
				Backups:           1,
				PropagationPeriod: 100 * time.Millisecond,
			}},
			FDInterval: 10 * time.Millisecond, FDTimeout: 60 * time.Millisecond,
			RoundTimeout: 100 * time.Millisecond, AckInterval: 15 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		defer srv.Stop()
		servers = append(servers, srv)
	}
	fmt.Printf("▸ topic %q served by 3 replicas (%d learning objects)\n", topic.Name, topic.Len())

	cep, err := net.Attach(ids.ClientEndpoint(42))
	if err != nil {
		log.Fatal(err)
	}
	client, err := core.NewClient(core.ClientConfig{Self: 42, Transport: cep, Servers: world})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if err := client.WaitUnit(topic.Name, len(world), 10*time.Second); err != nil {
		log.Fatal(err)
	}
	responses := make(chan wire.Message, 32)
	sess, err := client.StartSession(topic.Name, func(seq uint64, body wire.Message) {
		responses <- body
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("▸ student session %v open\n", sess.ID)

	next := func() wire.Message {
		if err := sess.Send(edu.Next{}); err != nil {
			log.Fatal(err)
		}
		select {
		case m := <-responses:
			return m
		case <-time.After(5 * time.Second):
			log.Fatal("no response to Next")
			return nil
		}
	}

	// Study until the first quiz.
	var quiz edu.Object
	for {
		m := next()
		c, ok := m.(edu.Content)
		if !ok {
			log.Fatalf("unexpected response %T", m)
		}
		fmt.Printf("▸ studying: [%s] %s\n", c.Object.Kind, c.Object.Title)
		if c.Object.Kind == edu.KindQuiz {
			quiz = c.Object
			break
		}
	}

	// Answer it wrong on purpose: the adaptive path kicks in.
	correct, _ := topic.Correct(quiz.ID)
	wrong := (correct + 1) % len(quiz.Options)
	if err := sess.Send(edu.Answer{Quiz: quiz.ID, Choice: wrong}); err != nil {
		log.Fatal(err)
	}
	res := (<-responses).(edu.QuizResult)
	fmt.Printf("▸ answered %q: correct=%v, running grade %d%%\n", quiz.Options[wrong], res.Correct, res.Grade)

	// Crash the primary BEFORE asking for the next step: the remedial
	// decision must survive the failover (the backup saw the failed quiz).
	victim := servers[0].PrimaryOf(topic.Name, sess.ID)
	net.Crash(ids.ProcessEndpoint(victim))
	fmt.Printf("▸ crashed the tutoring server (%v) before the next step...\n", victim)
	time.Sleep(500 * time.Millisecond)

	m := next()
	c := m.(edu.Content)
	fmt.Printf("▸ next object after failover: [%s] %s\n", c.Object.Kind, c.Object.Title)
	if c.Object.Kind == edu.KindRemedial {
		fmt.Println("▸ the new server remembered the failed quiz and served the remedial explanation")
	} else {
		fmt.Println("▸ unexpected: adaptive context was lost in the failover")
	}

	// Finish a few more steps to show the lesson continues normally.
	for i := 0; i < 3; i++ {
		switch r := next().(type) {
		case edu.Content:
			fmt.Printf("▸ continuing: [%s] %s\n", r.Object.Kind, r.Object.Title)
		case edu.Done:
			fmt.Println("▸ reached the end of the syllabus")
			i = 3
		}
	}
	if err := sess.End(); err != nil {
		log.Printf("end: %v", err)
	}
	fmt.Println("▸ lesson ended cleanly")
}
