module hafw

go 1.22
